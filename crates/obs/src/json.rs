//! A hand-rolled JSON value type with writer and parser.
//!
//! The workspace must build with zero external dependencies, so this module
//! replaces `serde_json` for the small structured-output needs of the
//! observability layer and the experiment harness: rendering metric
//! snapshots and event records as JSON-lines, and parsing them back in
//! tests. Object key order is preserved (insertion order), which keeps the
//! emitted telemetry deterministic.

use std::fmt;

/// A JSON value.
///
/// Integers are kept separate from floats so counters render without a
/// decimal point and survive a round-trip exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (rendered without decimal point).
    Int(i64),
    /// A floating-point number. Non-finite values render as `null` since
    /// JSON has no representation for them.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>, V: Into<Json>>(pairs: impl IntoIterator<Item = (K, V)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Builds an array from values.
    pub fn arr<V: Into<Json>>(items: impl IntoIterator<Item = V>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(64);
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                out.push_str(itoa(*i).as_str());
            }
            Json::Float(x) => {
                if x.is_finite() {
                    // Rust's shortest round-trip formatting; ensure a decimal
                    // marker so the value parses back as a float.
                    let s = format!("{x}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view (both `Int` and `Float` coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (the inverse of [`Json::render`]).
    ///
    /// # Errors
    /// Returns a [`JsonError`] describing the first syntax problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn itoa(i: i64) -> String {
    i.to_string()
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Self {
        Json::Int(i)
    }
}
impl From<i32> for Json {
    fn from(i: i32) -> Self {
        Json::Int(i64::from(i))
    }
}
impl From<u32> for Json {
    fn from(i: u32) -> Self {
        Json::Int(i64::from(i))
    }
}
impl From<u64> for Json {
    fn from(i: u64) -> Self {
        // Counters beyond i64::MAX lose exactness either way; saturate.
        Json::Int(i64::try_from(i).unwrap_or(i64::MAX))
    }
}
impl From<usize> for Json {
    fn from(i: usize) -> Self {
        Json::Int(i64::try_from(i).unwrap_or(i64::MAX))
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Float(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Self {
        Json::Arr(items)
    }
}
impl From<&[f64]> for Json {
    fn from(xs: &[f64]) -> Self {
        Json::Arr(xs.iter().map(|&x| Json::Float(x)).collect())
    }
}
impl From<&&str> for Json {
    fn from(s: &&str) -> Self {
        Json::Str((*s).to_string())
    }
}
impl From<&String> for Json {
    fn from(s: &String) -> Self {
        Json::Str(s.clone())
    }
}
impl From<Vec<f64>> for Json {
    fn from(xs: Vec<f64>) -> Self {
        Json::Arr(xs.into_iter().map(Json::Float).collect())
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(o: Option<T>) -> Self {
        o.map_or(Json::Null, Into::into)
    }
}

impl std::ops::Index<&str> for Json {
    type Output = Json;

    /// Object field access; missing keys and non-objects yield `Null`.
    fn index(&self, key: &str) -> &Json {
        static NULL: Json = Json::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Json {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Json> for &str {
    fn eq(&self, other: &Json) -> bool {
        other.as_str() == Some(*self)
    }
}

/// Builds a [`Json`] value with object-literal syntax, mirroring the
/// `serde_json::json!` call sites it replaced:
///
/// ```
/// # use segrout_obs::json;
/// let row = json!({"step": 3, "mlu": 1.25, "label": "joint"});
/// assert_eq!(row["step"].as_i64(), Some(3));
/// ```
///
/// Supported forms: `json!(null)`, `json!([e1, e2, ...])`,
/// `json!({"key": expr, ...})` (keys must be string literals), and
/// `json!(expr)` for any `Into<Json>` expression. Unlike `serde_json`,
/// object/array literals do not nest inside one invocation — build nested
/// values with separate `json!` calls or [`Json::obj`]/[`Json::arr`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::Json::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Json::Arr(vec![ $( $crate::Json::from($elem) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Json::Obj(vec![ $( ($key.to_string(), $crate::Json::from($value)) ),* ])
    };
    ($other:expr) => { $crate::Json::from($other) };
}

/// Parse error: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-42).render(), "-42");
        assert_eq!(Json::Float(0.5).render(), "0.5");
        assert_eq!(Json::Float(2.0).render(), "2.0");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Str("a\"b\n".into()).render(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn renders_nested() {
        let v = Json::obj([("name", Json::from("x")), ("vals", Json::arr([1i64, 2, 3]))]);
        assert_eq!(v.render(), r#"{"name":"x","vals":[1,2,3]}"#);
    }

    #[test]
    fn parses_what_it_renders() {
        let v = Json::obj([
            ("s", Json::from("hé\\\"llo\t")),
            ("i", Json::from(9_007_199_254_740_993i64)),
            ("f", Json::from(-1.25e-7)),
            ("a", Json::arr(vec![Json::Null, Json::Bool(false)])),
            ("o", Json::obj([("k", 1u64)])),
        ]);
        let back = Json::parse(&v.render()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_whitespace_and_rejects_garbage() {
        assert_eq!(
            Json::parse(" { \"a\" : [ 1 , 2.5 ] } ").unwrap(),
            Json::obj([("a", Json::arr(vec![Json::Int(1), Json::Float(2.5)]))])
        );
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn control_chars_roundtrip() {
        let s = Json::Str("\u{1}\u{1f}".into());
        assert_eq!(s.render(), "\"\\u0001\\u001f\"");
        assert_eq!(Json::parse(&s.render()).unwrap(), s);
    }
}
