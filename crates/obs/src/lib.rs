//! `segrout-obs` — zero-dependency observability for the segrout workspace.
//!
//! Three pieces, no external crates:
//!
//! * **Structured events** ([`event!`], [`Level`], [`set_level`]) — leveled,
//!   typed-field log records broadcast to a pluggable sink stack (stderr
//!   pretty-printer by default; [`init_jsonl`] adds a JSON-lines file).
//! * **Spans** ([`span`]) — RAII wall-time timers that feed `time.<name>`
//!   histograms and indent nested log output.
//! * **Metrics** ([`counter`], [`gauge`], [`histogram`], [`series`]) — a
//!   global registry of atomic counters, gauges, fixed-bucket histograms
//!   and sample series, dumped as JSON-lines records and as a human
//!   summary table at the end of a run.
//!
//! Plus the flight-recorder layer built on those three:
//!
//! * **Convergence traces** ([`trace_point`], [`set_trace_enabled`]) — the
//!   quality-vs-time curve of every anytime optimizer, recorded at accepted
//!   moves and B&B milestones, exported as JSONL.
//! * **Call-tree profiler** ([`set_profiling`], [`profile_table`],
//!   [`collapsed_stacks`]) — spans aggregate into a hierarchical profile
//!   with per-path self/total time and a flamegraph-ready folded export.
//! * **Run artifacts** ([`write_run_artifact`]) — a self-describing
//!   `run.json` per invocation (provenance + metrics + trace), and
//!   [`report`] to diff two of them into a regression verdict table.
//!
//! Everything is safe to call from library code: with the default `warn`
//! level and no JSONL sink, an instrumented hot loop pays one relaxed
//! atomic load per guarded event, one relaxed load per trace point, and one
//! atomic add per flushed counter batch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod log;
pub mod metrics;
pub mod profile;
pub mod report;
pub mod run;
pub mod span;
pub mod trace;

pub use json::{Json, JsonError};
pub use log::{
    add_sink, elapsed_us, enabled, flush, level, set_level, set_sinks, Event, JsonlSink, Level,
    Sink, StderrSink,
};
pub use metrics::{
    latency_bounds_ms, registry, time_bounds_ms, Counter, Gauge, Histogram, Metric, Registry,
    Series,
};
pub use profile::{
    collapsed_stacks, profile_nodes, profile_table, profiling, reset_profile, set_profiling,
    write_collapsed_stacks, ProfileNode,
};
pub use report::{
    any_regressed, compare, load_run_stats, render_table, time_to_within, ReportRow, RunStats,
    Thresholds, Verdict,
};
pub use run::{
    attach_provenance, git_rev, provenance, run_artifact, write_run_artifact, RUN_SCHEMA_VERSION,
};
pub use span::{current_depth, span, Span};
pub use trace::{
    reset_trace, set_trace_enabled, take_trace, trace_enabled, trace_json_records, trace_len,
    trace_point, trace_points, write_trace_jsonl, TracePoint,
};

use std::path::Path;
use std::sync::Arc;

/// Gets or creates the global counter `name`.
pub fn counter(name: &str) -> Arc<Counter> {
    registry().counter(name)
}

/// Gets or creates the global gauge `name`.
pub fn gauge(name: &str) -> Arc<Gauge> {
    registry().gauge(name)
}

/// Gets or creates the global histogram `name` with the given bounds.
pub fn histogram(name: &str, bounds: &[f64]) -> Arc<Histogram> {
    registry().histogram(name, bounds)
}

/// Gets or creates the global series `name`.
pub fn series(name: &str) -> Arc<Series> {
    registry().series(name)
}

/// Adds a JSON-lines sink writing to `path` (truncating it).
///
/// # Errors
/// Propagates file-creation errors.
pub fn init_jsonl(path: &Path) -> std::io::Result<()> {
    add_sink(Box::new(JsonlSink::create(path)?));
    Ok(())
}

/// Writes every registered metric as one JSON record per line to all sinks
/// that accept records (i.e. the JSONL file), then flushes.
pub fn dump_metrics() {
    for record in registry().to_json_records() {
        log::emit_record(&record);
    }
    flush();
}

/// The end-of-run metric summary table as plain text.
pub fn summary_table() -> String {
    registry().summary_table()
}

/// Clears the global metric registry (between benchmark repetitions).
pub fn reset_metrics() {
    registry().reset();
}
