//! Leveled structured events and the pluggable sink stack.
//!
//! An *event* is a named point-in-time observation with typed fields
//! (`heurospf.pass` with `pass=3 mlu=1.52`). Events below the global level
//! are dropped before any formatting happens, so disabled instrumentation
//! costs one atomic load. Enabled events are broadcast to every registered
//! [`Sink`]; the default stack is a stderr pretty-printer, and
//! [`crate::init_jsonl`] adds a JSON-lines file writer.

use crate::json::Json;
use std::io::Write;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Event severity, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable problems.
    Error = 0,
    /// Suspicious conditions the run survives.
    Warn = 1,
    /// High-level run progress (phase starts, results).
    Info = 2,
    /// Per-iteration algorithm telemetry.
    Debug = 3,
    /// Inner-loop detail (candidate evaluations, pivots).
    Trace = 4,
}

impl Level {
    /// Lower-case name, as used by `--log-level`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!(
                "unknown log level '{other}' (expected error|warn|info|debug|trace)"
            )),
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The global maximum level; events above it are dropped. Defaults to
/// [`Level::Warn`] so library use is silent.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);

/// Sets the global log level.
pub fn set_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current global log level.
pub fn level() -> Level {
    Level::from_u8(MAX_LEVEL.load(Ordering::Relaxed))
}

/// `true` when events at `l` are currently recorded. This is the cheap
/// guard call sites use before assembling fields.
#[inline]
pub fn enabled(l: Level) -> bool {
    (l as u8) <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Monotonic run start, used to timestamp events.
fn run_start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Microseconds since the first observability call of the process.
pub fn elapsed_us() -> u64 {
    u64::try_from(run_start().elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// One structured event, as delivered to sinks.
pub struct Event<'a> {
    /// Severity.
    pub level: Level,
    /// Dotted event name (`heurospf.pass`).
    pub name: &'a str,
    /// Typed fields.
    pub fields: &'a [(&'a str, Json)],
    /// Microseconds since run start.
    pub t_us: u64,
    /// Span nesting depth at emission time (for indentation).
    pub depth: usize,
}

impl Event<'_> {
    /// The event as a JSON record (`{"type":"event",...}`).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("type".into(), Json::from("event")),
            ("t_us".into(), Json::from(self.t_us)),
            ("level".into(), Json::from(self.level.as_str())),
            ("name".into(), Json::from(self.name)),
            (
                "fields".into(),
                Json::Obj(
                    self.fields
                        .iter()
                        .map(|(k, v)| ((*k).to_string(), v.clone()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// A destination for events and structured records.
pub trait Sink: Send {
    /// Receives one enabled event.
    fn event(&mut self, e: &Event<'_>);
    /// Receives a non-event structured record (metric snapshots, run
    /// summaries). Sinks that only pretty-print may ignore these.
    fn record(&mut self, _json: &Json) {}
    /// Flushes any buffered output.
    fn flush(&mut self) {}
}

/// Pretty-printer for humans: `[  1.234s DEBUG] name key=value ...` on
/// stderr, indented by span depth.
pub struct StderrSink;

impl Sink for StderrSink {
    fn event(&mut self, e: &Event<'_>) {
        let mut line = String::with_capacity(96);
        let secs = e.t_us as f64 / 1e6;
        line.push_str(&format!(
            "[{secs:>9.3}s {:>5}] ",
            e.level.as_str().to_ascii_uppercase()
        ));
        for _ in 0..e.depth {
            line.push_str("  ");
        }
        line.push_str(e.name);
        for (k, v) in e.fields {
            line.push(' ');
            line.push_str(k);
            line.push('=');
            match v {
                Json::Str(s) => line.push_str(s),
                other => line.push_str(&other.render()),
            }
        }
        eprintln!("{line}");
    }
}

/// JSON-lines file writer: one compact JSON object per line, events and
/// structured records alike.
pub struct JsonlSink {
    out: std::io::BufWriter<std::fs::File>,
}

impl JsonlSink {
    /// Creates (truncates) `path`.
    ///
    /// # Errors
    /// Propagates file-creation errors.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(Self {
            out: std::io::BufWriter::new(std::fs::File::create(path)?),
        })
    }
}

impl Sink for JsonlSink {
    fn event(&mut self, e: &Event<'_>) {
        let _ = writeln!(self.out, "{}", e.to_json().render());
    }

    fn record(&mut self, json: &Json) {
        let _ = writeln!(self.out, "{}", json.render());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

fn sinks() -> &'static Mutex<Vec<Box<dyn Sink>>> {
    static SINKS: OnceLock<Mutex<Vec<Box<dyn Sink>>>> = OnceLock::new();
    SINKS.get_or_init(|| Mutex::new(vec![Box::new(StderrSink)]))
}

/// Registers an additional sink.
pub fn add_sink(sink: Box<dyn Sink>) {
    sinks().lock().expect("sink stack poisoned").push(sink);
}

/// Replaces the whole sink stack (tests use this to capture output).
pub fn set_sinks(stack: Vec<Box<dyn Sink>>) {
    *sinks().lock().expect("sink stack poisoned") = stack;
}

/// Emits one event to every sink. Call sites should guard with
/// [`enabled`] (or use the [`crate::event!`] macro, which does).
pub fn emit(level: Level, name: &str, fields: &[(&str, Json)]) {
    let e = Event {
        level,
        name,
        fields,
        t_us: elapsed_us(),
        depth: crate::span::current_depth(),
    };
    for sink in sinks().lock().expect("sink stack poisoned").iter_mut() {
        sink.event(&e);
    }
}

/// Broadcasts a structured (non-event) record to every sink.
pub fn emit_record(json: &Json) {
    for sink in sinks().lock().expect("sink stack poisoned").iter_mut() {
        sink.record(json);
    }
}

/// Flushes every sink. Call once at the end of a run.
pub fn flush() {
    for sink in sinks().lock().expect("sink stack poisoned").iter_mut() {
        sink.flush();
    }
}

/// Emits a leveled structured event when the level is enabled.
///
/// ```
/// segrout_obs::event!(segrout_obs::Level::Info, "run.start", topology = "Abilene", seed = 3u64);
/// ```
#[macro_export]
macro_rules! event {
    ($level:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled($level) {
            $crate::log::emit(
                $level,
                $name,
                &[$((stringify!($key), $crate::Json::from($value))),*],
            );
        }
    };
}
