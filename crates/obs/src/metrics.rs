//! The global metrics registry: atomic counters, gauges, fixed-bucket
//! histograms, and append-only series.
//!
//! Metrics are identified by dotted names (`simplex.pivots`,
//! `time.heurospf`). Handles are `Arc`s; hot call sites fetch a handle once
//! and update it lock-free, or accumulate locally and flush a single delta
//! at the end of a call (the pattern every per-relaxation / per-pivot site
//! in this workspace uses, keeping instrumentation overhead far below the
//! cost of the instrumented loop).

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins floating-point gauge.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(0.0f64.to_bits()))
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Atomic f64 accumulator (CAS loop over the bit pattern).
#[derive(Debug)]
struct AtomicF64(AtomicU64);

impl AtomicF64 {
    fn new(v: f64) -> Self {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn update(&self, f: impl Fn(f64) -> f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = f(f64::from_bits(cur)).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// A fixed-bucket histogram with atomic bucket counts.
///
/// Bucket `i` counts observations `<= bounds[i]`; one overflow bucket
/// catches the rest. Quantiles are estimated by linear interpolation inside
/// the covering bucket, clamped to the observed min/max.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[f64]>,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicF64,
    min: AtomicF64,
    max: AtomicF64,
}

impl Histogram {
    /// A standalone (unregistered) histogram with the given bucket bounds,
    /// for aggregators that keep their own keyed maps (e.g. the call-tree
    /// profiler).
    ///
    /// # Panics
    /// Panics when `bounds` is empty or not strictly increasing.
    pub fn with_bounds(bounds: &[f64]) -> Self {
        Self::new(bounds)
    }

    fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.into(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicF64::new(0.0),
            min: AtomicF64::new(f64::INFINITY),
            max: AtomicF64::new(f64::NEG_INFINITY),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .partition_point(|&b| b < v)
            .min(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.update(|s| s + v);
        self.min.update(|m| m.min(v));
        self.max.update(|m| m.max(v));
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum.get()
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min.get()
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max.get()
    }

    /// The inclusive upper bounds of the finite buckets.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds().len() + 1` entries, last = overflow).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimates the `q`-quantile (`0 <= q <= 1`) from the buckets, clamped
    /// to the observed extrema. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * n as f64;
        let counts = self.bucket_counts();
        let mut cum = 0.0;
        for (i, &c) in counts.iter().enumerate() {
            let prev = cum;
            cum += c as f64;
            if cum >= target && c > 0 {
                let lo = if i == 0 {
                    self.min().min(self.bounds[0])
                } else {
                    self.bounds[i - 1]
                };
                let hi = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max().max(*self.bounds.last().expect("non-empty"))
                };
                let frac = if c == 0 {
                    0.0
                } else {
                    (target - prev) / c as f64
                };
                let est = lo + (hi - lo) * frac.clamp(0.0, 1.0);
                return est.clamp(self.min(), self.max());
            }
        }
        self.max()
    }
}

/// Exponential bucket bounds for wall-time in milliseconds: 0.01 ms to
/// ~10 minutes, factor 2 per bucket.
pub fn time_bounds_ms() -> &'static [f64] {
    static BOUNDS: OnceLock<Vec<f64>> = OnceLock::new();
    BOUNDS.get_or_init(|| (0..26).map(|i| 0.01 * 2f64.powi(i)).collect())
}

/// Finer-grained exponential bucket bounds for per-event serving latency in
/// milliseconds: 1 µs to ~8 s, factor 1.5 per bucket. The factor-2
/// [`time_bounds_ms`] buckets are too coarse for p99 estimates on
/// sub-millisecond probe answers, where a bucket boundary doubles the
/// reported quantile.
pub fn latency_bounds_ms() -> &'static [f64] {
    static BOUNDS: OnceLock<Vec<f64>> = OnceLock::new();
    BOUNDS.get_or_init(|| (0..40).map(|i| 0.001 * 1.5f64.powi(i)).collect())
}

/// An append-only sample series, e.g. the per-iteration MLU trajectory of a
/// local search.
#[derive(Debug, Default)]
pub struct Series(Mutex<Vec<f64>>);

impl Series {
    /// Appends a sample.
    pub fn push(&self, v: f64) {
        self.0.lock().expect("series poisoned").push(v);
    }

    /// Snapshot of all samples.
    pub fn values(&self) -> Vec<f64> {
        self.0.lock().expect("series poisoned").clone()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.0.lock().expect("series poisoned").len()
    }

    /// `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One registered metric.
#[derive(Clone, Debug)]
pub enum Metric {
    /// A [`Counter`].
    Counter(Arc<Counter>),
    /// A [`Gauge`].
    Gauge(Arc<Gauge>),
    /// A [`Histogram`].
    Histogram(Arc<Histogram>),
    /// A [`Series`].
    Series(Arc<Series>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
            Metric::Series(_) => "series",
        }
    }
}

/// The metric registry: a name-keyed map of metrics.
#[derive(Default)]
pub struct Registry {
    map: Mutex<BTreeMap<String, Metric>>,
}

/// The global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

impl Registry {
    /// Gets or creates a counter.
    ///
    /// # Panics
    /// Panics when `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.map.lock().expect("registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric '{name}' is a {}, not a counter", other.kind()),
        }
    }

    /// Gets or creates a gauge.
    ///
    /// # Panics
    /// Panics when `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.map.lock().expect("registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric '{name}' is a {}, not a gauge", other.kind()),
        }
    }

    /// Gets or creates a histogram with the given bucket bounds (ignored
    /// when the histogram already exists).
    ///
    /// # Panics
    /// Panics when `name` is already registered as a different metric kind,
    /// or on invalid bounds.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut map = self.map.lock().expect("registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric '{name}' is a {}, not a histogram", other.kind()),
        }
    }

    /// Gets or creates a series.
    ///
    /// # Panics
    /// Panics when `name` is already registered as a different metric kind.
    pub fn series(&self, name: &str) -> Arc<Series> {
        let mut map = self.map.lock().expect("registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Series(Arc::new(Series::default())))
        {
            Metric::Series(s) => Arc::clone(s),
            other => panic!("metric '{name}' is a {}, not a series", other.kind()),
        }
    }

    /// Zeroes every metric in place. Handles cached by call sites (hot
    /// loops hold `Arc`s across calls) stay registered and keep reporting —
    /// clearing the map instead would silently detach them.
    pub fn reset(&self) {
        let map = self.map.lock().expect("registry poisoned");
        for metric in map.values() {
            match metric {
                Metric::Counter(c) => c.0.store(0, Ordering::Relaxed),
                Metric::Gauge(g) => g.set(0.0),
                Metric::Histogram(h) => {
                    for b in h.buckets.iter() {
                        b.store(0, Ordering::Relaxed);
                    }
                    h.count.store(0, Ordering::Relaxed);
                    h.sum.update(|_| 0.0);
                    h.min.update(|_| f64::INFINITY);
                    h.max.update(|_| f64::NEG_INFINITY);
                }
                Metric::Series(s) => s.0.lock().expect("series poisoned").clear(),
            }
        }
    }

    /// Name-sorted snapshot of all metrics.
    pub fn snapshot(&self) -> Vec<(String, Metric)> {
        self.map
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// One JSON record per metric (`{"type":"counter","name":...,...}`),
    /// ready to be written as JSON-lines.
    pub fn to_json_records(&self) -> Vec<Json> {
        self.snapshot()
            .into_iter()
            .map(|(name, metric)| metric_record(&name, &metric))
            .collect()
    }

    /// A plain-text summary table of every metric, for the end-of-run
    /// report.
    pub fn summary_table(&self) -> String {
        let snapshot = self.snapshot();
        let mut out = String::new();
        let rule = "─".repeat(74);
        out.push_str(&rule);
        out.push('\n');
        out.push_str(&format!("{:<38} {:>35}\n", "metric", "value"));
        out.push_str(&rule);
        out.push('\n');
        for (name, metric) in &snapshot {
            let value = match metric {
                Metric::Counter(c) => format!("{}", c.get()),
                Metric::Gauge(g) => format!("{:.6}", g.get()),
                Metric::Histogram(h) => {
                    if h.count() == 0 {
                        "n=0".to_string()
                    } else {
                        format!(
                            "n={} mean={:.3} p50={:.3} max={:.3}",
                            h.count(),
                            h.mean(),
                            h.quantile(0.5),
                            h.max()
                        )
                    }
                }
                Metric::Series(s) => {
                    let v = s.values();
                    match (v.first(), v.last()) {
                        (Some(first), Some(last)) => {
                            format!("n={} first={:.4} last={:.4}", v.len(), first, last)
                        }
                        _ => "n=0".to_string(),
                    }
                }
            };
            out.push_str(&format!("{name:<38} {value:>35}\n"));
        }
        out.push_str(&rule);
        out.push('\n');
        out
    }
}

fn metric_record(name: &str, metric: &Metric) -> Json {
    match metric {
        Metric::Counter(c) => Json::obj([
            ("type", Json::from("counter")),
            ("name", Json::from(name)),
            ("value", Json::from(c.get())),
        ]),
        Metric::Gauge(g) => Json::obj([
            ("type", Json::from("gauge")),
            ("name", Json::from(name)),
            ("value", Json::from(g.get())),
        ]),
        Metric::Histogram(h) => {
            let counts = h.bucket_counts();
            let buckets: Vec<Json> = h
                .bounds()
                .iter()
                .map(|&b| Json::from(b))
                .chain(std::iter::once(Json::Null))
                .zip(counts)
                .filter(|(_, c)| *c > 0)
                .map(|(le, c)| Json::obj([("le", le), ("count", Json::from(c))]))
                .collect();
            Json::obj([
                ("type", Json::from("histogram")),
                ("name", Json::from(name)),
                ("count", Json::from(h.count())),
                ("sum", Json::from(h.sum())),
                ("mean", Json::from(h.mean())),
                (
                    "min",
                    if h.count() == 0 {
                        Json::Null
                    } else {
                        Json::from(h.min())
                    },
                ),
                (
                    "max",
                    if h.count() == 0 {
                        Json::Null
                    } else {
                        Json::from(h.max())
                    },
                ),
                ("p50", Json::from(h.quantile(0.5))),
                ("p95", Json::from(h.quantile(0.95))),
                ("p99", Json::from(h.quantile(0.99))),
                ("buckets", Json::Arr(buckets)),
            ])
        }
        Metric::Series(s) => Json::obj([
            ("type", Json::from("series")),
            ("name", Json::from(name)),
            ("values", Json::from(s.values().as_slice())),
        ]),
    }
}
