//! Hierarchical span profiler: an aggregating call-tree over [`crate::span`].
//!
//! When profiling is enabled ([`set_profiling`]), every span additionally
//! pushes its name onto a thread-local frame stack; on drop the span records
//! its wall-time under the full stack path (`optimize;heurospf;par.batch`).
//! Each path accumulates call count, total time, child time (from which self
//! time is derived) and a duration [`Histogram`] for p50/p99 — the
//! per-callsite latency distribution the flat `time.<name>` histograms
//! cannot give once a span is reached from several parents.
//!
//! Two exports:
//!
//! * [`profile_table`] — an indented human-readable tree with per-node
//!   calls / total / self / p50 / p99 milliseconds.
//! * [`collapsed_stacks`] — the folded-stack text format
//!   (`path;to;frame <self-time-µs>`, one line per node) consumed by
//!   standard flamegraph tooling (`flamegraph.pl`, `inferno`, speedscope).
//!
//! Disabled cost: one relaxed atomic load per span construction (spans are
//! already coarse-grained, so even the enabled cost — one mutex acquisition
//! per span *completion* — is far off every hot loop).

use crate::metrics::{time_bounds_ms, Histogram};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// The stack of profiled span names open on this thread.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Aggregated statistics of one call-tree node.
struct ProfStat {
    count: u64,
    total_ms: f64,
    /// Total time of completed *direct* children (self = total - child).
    child_ms: f64,
    durations: Histogram,
}

impl ProfStat {
    fn new() -> Self {
        Self {
            count: 0,
            total_ms: 0.0,
            child_ms: 0.0,
            durations: Histogram::with_bounds(time_bounds_ms()),
        }
    }
}

/// The call tree, flattened: keyed by the `;`-joined frame path.
fn tree() -> &'static Mutex<BTreeMap<String, ProfStat>> {
    static TREE: OnceLock<Mutex<BTreeMap<String, ProfStat>>> = OnceLock::new();
    TREE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Turns the profiler on or off. Aggregates are kept across toggles; use
/// [`reset_profile`] to clear them.
pub fn set_profiling(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// `true` when spans are currently feeding the call-tree profiler.
#[inline]
pub fn profiling() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Opens a frame: pushes `name` onto this thread's stack. Called by
/// [`crate::span`] only when profiling was enabled at span construction; the
/// span remembers that and guarantees a matching [`frame_exit`].
pub(crate) fn frame_enter(name: &'static str) {
    STACK.with(|s| s.borrow_mut().push(name));
}

/// Closes the innermost frame, attributing `ms` of wall-time to its path and
/// as child time to its parent. A stray exit (stack empty) is ignored.
pub(crate) fn frame_exit(ms: f64) {
    let (path, parent) = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let path = stack.join(";");
        stack.pop();
        let parent = if stack.is_empty() {
            None
        } else {
            Some(stack.join(";"))
        };
        (path, parent)
    });
    if path.is_empty() {
        return;
    }
    let mut tree = tree().lock().expect("profile tree poisoned");
    let node = tree.entry(path).or_insert_with(ProfStat::new);
    node.count += 1;
    node.total_ms += ms;
    node.durations.observe(ms);
    if let Some(parent) = parent {
        tree.entry(parent).or_insert_with(ProfStat::new).child_ms += ms;
    }
}

/// Snapshot row of [`profile_nodes`].
#[derive(Clone, Debug)]
pub struct ProfileNode {
    /// `;`-joined frame path from the thread's root span.
    pub path: String,
    /// Completed calls.
    pub count: u64,
    /// Total wall-time, milliseconds.
    pub total_ms: f64,
    /// Self time (total minus completed direct children), milliseconds.
    pub self_ms: f64,
    /// Median call duration, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile call duration, milliseconds.
    pub p99_ms: f64,
}

/// Path-sorted snapshot of the aggregated call tree.
pub fn profile_nodes() -> Vec<ProfileNode> {
    let tree = tree().lock().expect("profile tree poisoned");
    tree.iter()
        .map(|(path, s)| ProfileNode {
            path: path.clone(),
            count: s.count,
            total_ms: s.total_ms,
            self_ms: (s.total_ms - s.child_ms).max(0.0),
            p50_ms: s.durations.quantile(0.5),
            p99_ms: s.durations.quantile(0.99),
        })
        .collect()
}

/// Clears all aggregates (between benchmark repetitions or tests). Open
/// frames on live threads are unaffected.
pub fn reset_profile() {
    tree().lock().expect("profile tree poisoned").clear();
}

/// The aggregated call tree as an indented plain-text table.
pub fn profile_table() -> String {
    let nodes = profile_nodes();
    let mut out = String::new();
    let rule = "─".repeat(86);
    out.push_str(&rule);
    out.push('\n');
    out.push_str(&format!(
        "{:<40} {:>7} {:>9} {:>9} {:>8} {:>8}\n",
        "span path", "calls", "total ms", "self ms", "p50 ms", "p99 ms"
    ));
    out.push_str(&rule);
    out.push('\n');
    for n in &nodes {
        let depth = n.path.matches(';').count();
        let name = n.path.rsplit(';').next().unwrap_or(&n.path);
        let label = format!("{}{}", "  ".repeat(depth), name);
        out.push_str(&format!(
            "{label:<40} {:>7} {:>9.2} {:>9.2} {:>8.2} {:>8.2}\n",
            n.count, n.total_ms, n.self_ms, n.p50_ms, n.p99_ms
        ));
    }
    out.push_str(&rule);
    out.push('\n');
    out
}

/// The call tree in collapsed-stack ("folded") text form: one
/// `path;to;frame <self-time-µs>` line per node, ready for flamegraph
/// tooling. Nodes whose self time rounds to zero microseconds are kept with
/// weight 0 so the hierarchy stays complete.
pub fn collapsed_stacks() -> String {
    let mut out = String::new();
    for n in profile_nodes() {
        let us = (n.self_ms * 1e3).round().max(0.0) as u64;
        out.push_str(&n.path);
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    out
}

/// Writes [`collapsed_stacks`] to `path`.
///
/// # Errors
/// Propagates file-write errors.
pub fn write_collapsed_stacks(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, collapsed_stacks())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The call tree is process-global; tests serialize on a local lock and
    // reset around use.
    fn locked() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().expect("test lock")
    }

    #[test]
    fn nested_frames_attribute_self_and_child_time() {
        let _g = locked();
        reset_profile();
        frame_enter("outer");
        frame_enter("inner");
        frame_exit(4.0); // inner
        frame_exit(10.0); // outer
        let nodes = profile_nodes();
        assert_eq!(nodes.len(), 2);
        let outer = nodes.iter().find(|n| n.path == "outer").expect("outer");
        let inner = nodes
            .iter()
            .find(|n| n.path == "outer;inner")
            .expect("inner");
        assert_eq!(outer.count, 1);
        assert!((outer.total_ms - 10.0).abs() < 1e-9);
        assert!((outer.self_ms - 6.0).abs() < 1e-9);
        assert!((inner.total_ms - 4.0).abs() < 1e-9);
        assert!((inner.self_ms - 4.0).abs() < 1e-9);
        reset_profile();
    }

    #[test]
    fn collapsed_stacks_lines_are_path_space_weight() {
        let _g = locked();
        reset_profile();
        frame_enter("a");
        frame_enter("b");
        frame_exit(1.0);
        frame_exit(3.0);
        let folded = collapsed_stacks();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let (path, weight) = line.rsplit_once(' ').expect("weight column");
            assert!(!path.is_empty());
            weight.parse::<u64>().expect("integer microseconds");
        }
        assert!(lines.iter().any(|l| l.starts_with("a;b ")));
        reset_profile();
    }

    #[test]
    fn stray_exit_is_ignored() {
        let _g = locked();
        reset_profile();
        frame_exit(5.0);
        assert!(profile_nodes().is_empty());
    }
}
