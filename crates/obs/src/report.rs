//! Run-artifact comparison: the engine behind `segrout report`.
//!
//! Loads two runs — either `run.json` artifacts ([`crate::run`]) or raw
//! JSONL telemetry files (metrics and/or trace records) — extracts the
//! comparable statistics, and renders a regression verdict table:
//!
//! * **final MLU** — solution quality (threshold: `mlu_tol`, default 1%);
//! * **time-to-within-1%-of-final** — convergence speed, from the running
//!   best-so-far MLU of the trace (threshold: `time_tol`);
//! * **wall time** and per-span **p99 latencies** (`time.*` histograms);
//! * a fixed set of work counters (recomputes, probes, pivots, ...) whose
//!   drift flags algorithmic behaviour changes (threshold: `count_tol`).
//!
//! Rows missing on either side are reported `n/a` and never fail the run;
//! any `REGRESSED` row makes [`any_regressed`] true (CLI exits non-zero).

use crate::json::Json;
use std::collections::BTreeMap;
use std::path::Path;

/// Relative-change thresholds for verdicts. All rows compare "lower is
/// better" quantities; a relative increase beyond the threshold is a
/// regression, a decrease beyond it an improvement.
#[derive(Clone, Copy, Debug)]
pub struct Thresholds {
    /// Final-MLU tolerance (default 0.01 = 1%).
    pub mlu_tol: f64,
    /// Timing tolerance for wall time, time-to-1%, and span p99s (default
    /// 0.25 — timings are noisy).
    pub time_tol: f64,
    /// Work-counter tolerance (default 0.10).
    pub count_tol: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Self {
            mlu_tol: 0.01,
            time_tol: 0.25,
            count_tol: 0.10,
        }
    }
}

/// Work counters compared between runs when present on both sides.
pub const COMPARED_COUNTERS: &[&str] = &[
    "heurospf.iterations",
    "greedywpo.candidates_evaluated",
    "dijkstra.runs",
    "dijkstra.relaxations",
    "ecmp.recomputes",
    "incr.probes",
    "incr.repairs",
    "simplex.pivots",
    "milp.nodes",
];

/// The comparable statistics of one run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Display label (the file name).
    pub label: String,
    /// Final best MLU (the `run.mlu` gauge, or the best MLU in the trace).
    pub final_mlu: Option<f64>,
    /// Total wall time in milliseconds (run artifacts only).
    pub wall_ms: Option<f64>,
    /// Milliseconds until the running best MLU first came within 1% of its
    /// final value (needs a trace).
    pub time_to_1pct_ms: Option<f64>,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// p99 by histogram name (`time.*` spans and probe latencies).
    pub hist_p99: BTreeMap<String, f64>,
}

/// Milliseconds until the running best of `(t_us, value)` first comes
/// within `frac` of its final value. `None` on an empty/NaN-only trace.
pub fn time_to_within(points: &[(u64, f64)], frac: f64) -> Option<f64> {
    let finite: Vec<(u64, f64)> = points
        .iter()
        .copied()
        .filter(|(_, v)| v.is_finite())
        .collect();
    let final_best = finite.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
    if !final_best.is_finite() {
        return None;
    }
    let threshold = final_best * (1.0 + frac);
    let mut best = f64::INFINITY;
    for (t_us, v) in finite {
        best = best.min(v);
        if best <= threshold {
            return Some(t_us as f64 / 1e3);
        }
    }
    None
}

fn trace_points_of(records: &[Json]) -> Vec<(u64, f64)> {
    records
        .iter()
        .filter(|r| r["type"].as_str() == Some("trace"))
        .map(|r| {
            (
                r["t_us"].as_i64().unwrap_or(0).max(0) as u64,
                r["mlu"].as_f64().unwrap_or(f64::NAN),
            )
        })
        .collect()
}

fn stats_from_run_artifact(label: &str, art: &Json) -> RunStats {
    let mut stats = RunStats {
        label: label.to_string(),
        wall_ms: art["wall_ms"].as_f64(),
        ..RunStats::default()
    };
    if let Json::Obj(metrics) = &art["metrics"] {
        for (name, m) in metrics {
            match m["kind"].as_str() {
                Some("counter") => {
                    stats
                        .counters
                        .insert(name.clone(), m["value"].as_i64().unwrap_or(0).max(0) as u64);
                }
                Some("gauge") if name == "run.mlu" => {
                    stats.final_mlu = m["value"].as_f64().filter(|v| *v > 0.0);
                }
                Some("histogram") => {
                    if let Some(p99) = m["p99"].as_f64() {
                        if m["count"].as_i64().unwrap_or(0) > 0 {
                            stats.hist_p99.insert(name.clone(), p99);
                        }
                    }
                }
                _ => {}
            }
        }
    }
    let trace = art["trace"].as_arr().unwrap_or(&[]).to_vec();
    let points = trace_points_of(&trace);
    stats.time_to_1pct_ms = time_to_within(&points, 0.01);
    if stats.final_mlu.is_none() {
        let best = points
            .iter()
            .map(|&(_, v)| v)
            .filter(|v| v.is_finite())
            .fold(f64::INFINITY, f64::min);
        if best.is_finite() {
            stats.final_mlu = Some(best);
        }
    }
    stats
}

fn stats_from_jsonl(label: &str, records: &[Json]) -> RunStats {
    let mut stats = RunStats {
        label: label.to_string(),
        ..RunStats::default()
    };
    for r in records {
        let Some(name) = r["name"].as_str() else {
            continue;
        };
        match r["type"].as_str() {
            Some("counter") => {
                stats.counters.insert(
                    name.to_string(),
                    r["value"].as_i64().unwrap_or(0).max(0) as u64,
                );
            }
            Some("gauge") if name == "run.mlu" => {
                stats.final_mlu = r["value"].as_f64().filter(|v| *v > 0.0);
            }
            Some("histogram") => {
                if let Some(p99) = r["p99"].as_f64() {
                    if r["count"].as_i64().unwrap_or(0) > 0 {
                        stats.hist_p99.insert(name.to_string(), p99);
                    }
                }
            }
            _ => {}
        }
    }
    let points = trace_points_of(records);
    stats.time_to_1pct_ms = time_to_within(&points, 0.01);
    if stats.final_mlu.is_none() {
        let best = points
            .iter()
            .map(|&(_, v)| v)
            .filter(|v| v.is_finite())
            .fold(f64::INFINITY, f64::min);
        if best.is_finite() {
            stats.final_mlu = Some(best);
        }
    }
    stats
}

/// Loads one run from `path`: a `run.json` artifact (single JSON document
/// with `"type":"run"`) or a JSONL telemetry/trace file.
///
/// # Errors
/// Returns a message when the file is unreadable or no line parses as JSON.
pub fn load_run_stats(path: &Path) -> Result<RunStats, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let label = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec = Json::parse(line)
            .map_err(|e| format!("{}:{}: not valid JSON ({e})", path.display(), i + 1))?;
        if rec["type"].as_str() == Some("run") {
            return Ok(stats_from_run_artifact(&label, &rec));
        }
        records.push(rec);
    }
    if records.is_empty() {
        return Err(format!("{}: no JSON records", path.display()));
    }
    Ok(stats_from_jsonl(&label, &records))
}

/// Verdict of one comparison row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// New value is meaningfully lower (better).
    Improved,
    /// Within the threshold.
    Ok,
    /// New value is meaningfully higher (worse).
    Regressed,
    /// One side lacks the statistic.
    NotComparable,
}

impl Verdict {
    fn label(self) -> &'static str {
        match self {
            Verdict::Improved => "IMPROVED",
            Verdict::Ok => "OK",
            Verdict::Regressed => "REGRESSED",
            Verdict::NotComparable => "n/a",
        }
    }
}

/// One row of the regression table.
#[derive(Clone, Debug)]
pub struct ReportRow {
    /// Statistic name.
    pub name: String,
    /// Old-run value.
    pub old: Option<f64>,
    /// New-run value.
    pub new: Option<f64>,
    /// Relative change in percent (`None` when not comparable).
    pub delta_pct: Option<f64>,
    /// Verdict at the row's threshold.
    pub verdict: Verdict,
}

fn row(name: &str, old: Option<f64>, new: Option<f64>, tol: f64) -> ReportRow {
    let (delta_pct, verdict) = match (old, new) {
        (Some(o), Some(n)) if o.is_finite() && n.is_finite() => {
            if o.abs() < 1e-9 {
                // Relative change from zero is undefined; a zero-to-zero row
                // is trivially fine, anything else is not comparable.
                if n.abs() < 1e-9 {
                    (Some(0.0), Verdict::Ok)
                } else {
                    (None, Verdict::NotComparable)
                }
            } else {
                let rel = (n - o) / o.abs();
                let verdict = if rel > tol {
                    Verdict::Regressed
                } else if rel < -tol {
                    Verdict::Improved
                } else {
                    Verdict::Ok
                };
                (Some(rel * 100.0), verdict)
            }
        }
        _ => (None, Verdict::NotComparable),
    };
    ReportRow {
        name: name.to_string(),
        old,
        new,
        delta_pct,
        verdict,
    }
}

/// Compares two runs into verdict rows (quality first, then timing, then
/// work counters).
pub fn compare(old: &RunStats, new: &RunStats, t: Thresholds) -> Vec<ReportRow> {
    let mut rows = vec![
        row("final MLU", old.final_mlu, new.final_mlu, t.mlu_tol),
        row(
            "time to 1% of final (ms)",
            old.time_to_1pct_ms,
            new.time_to_1pct_ms,
            t.time_tol,
        ),
        row("wall time (ms)", old.wall_ms, new.wall_ms, t.time_tol),
    ];
    for (name, &o) in &old.hist_p99 {
        if let Some(&n) = new.hist_p99.get(name) {
            rows.push(row(
                &format!("{name} p99 (ms)"),
                Some(o),
                Some(n),
                t.time_tol,
            ));
        }
    }
    for &name in COMPARED_COUNTERS {
        let o = old.counters.get(name).copied();
        let n = new.counters.get(name).copied();
        if o.is_some() || n.is_some() {
            rows.push(row(
                name,
                o.map(|v| v as f64),
                n.map(|v| v as f64),
                t.count_tol,
            ));
        }
    }
    rows
}

/// `true` when any row regressed.
pub fn any_regressed(rows: &[ReportRow]) -> bool {
    rows.iter().any(|r| r.verdict == Verdict::Regressed)
}

fn fmt_value(v: Option<f64>) -> String {
    match v {
        Some(x) if x.abs() >= 1e6 => format!("{x:.3e}"),
        Some(x) if (x.fract() == 0.0) && x.abs() < 1e6 => format!("{x:.0}"),
        Some(x) => format!("{x:.4}"),
        None => "-".to_string(),
    }
}

/// Renders the verdict table as plain text.
pub fn render_table(old: &RunStats, new: &RunStats, rows: &[ReportRow]) -> String {
    let mut out = String::new();
    let rule = "─".repeat(84);
    out.push_str(&format!("report: {}  →  {}\n", old.label, new.label));
    out.push_str(&rule);
    out.push('\n');
    out.push_str(&format!(
        "{:<34} {:>12} {:>12} {:>9} {:>11}\n",
        "statistic", "old", "new", "Δ%", "verdict"
    ));
    out.push_str(&rule);
    out.push('\n');
    for r in rows {
        let delta = r
            .delta_pct
            .map(|d| format!("{d:+.1}%"))
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!(
            "{:<34} {:>12} {:>12} {:>9} {:>11}\n",
            r.name,
            fmt_value(r.old),
            fmt_value(r.new),
            delta,
            r.verdict.label()
        ));
    }
    out.push_str(&rule);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_to_within_uses_running_best() {
        // Best-so-far: 2.0, 1.6, 1.6, 1.5 — final 1.5, 1% band = 1.515;
        // first reached at t=30ms (the 1.5 sample), not the noisy 1.6s.
        let pts = [(10_000, 2.0), (20_000, 1.6), (25_000, 1.7), (30_000, 1.5)];
        let ms = time_to_within(&pts, 0.01).expect("reached");
        assert!((ms - 30.0).abs() < 1e-9);
        // A generous 10% band is hit earlier.
        let ms10 = time_to_within(&pts, 0.10).expect("reached");
        assert!((ms10 - 20.0).abs() < 1e-9);
        assert_eq!(time_to_within(&[], 0.01), None);
        assert_eq!(time_to_within(&[(5, f64::NAN)], 0.01), None);
    }

    #[test]
    fn verdicts_respect_thresholds() {
        let r = row("x", Some(100.0), Some(105.0), 0.10);
        assert_eq!(r.verdict, Verdict::Ok);
        let r = row("x", Some(100.0), Some(120.0), 0.10);
        assert_eq!(r.verdict, Verdict::Regressed);
        let r = row("x", Some(100.0), Some(80.0), 0.10);
        assert_eq!(r.verdict, Verdict::Improved);
        let r = row("x", None, Some(80.0), 0.10);
        assert_eq!(r.verdict, Verdict::NotComparable);
    }

    #[test]
    fn compare_flags_mlu_regression() {
        let mut old = RunStats {
            label: "old".into(),
            final_mlu: Some(1.50),
            ..RunStats::default()
        };
        let mut new = RunStats {
            label: "new".into(),
            final_mlu: Some(1.60),
            ..RunStats::default()
        };
        old.counters.insert("simplex.pivots".into(), 100);
        new.counters.insert("simplex.pivots".into(), 104);
        let rows = compare(&old, &new, Thresholds::default());
        assert!(any_regressed(&rows));
        let mlu = rows.iter().find(|r| r.name == "final MLU").expect("row");
        assert_eq!(mlu.verdict, Verdict::Regressed);
        let piv = rows
            .iter()
            .find(|r| r.name == "simplex.pivots")
            .expect("row");
        assert_eq!(piv.verdict, Verdict::Ok);
        let table = render_table(&old, &new, &rows);
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("final MLU"));
    }
}
