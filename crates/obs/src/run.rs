//! Run artifacts: one self-describing `run.json` per invocation.
//!
//! A run artifact answers, months later, "what produced this number?": it
//! bundles provenance (host core count, thread setting, git revision, seed,
//! wall time), a compact snapshot of every registered metric, and the full
//! convergence trace of the run. The `segrout report` subcommand compares
//! two artifacts and prints a regression verdict table.
//!
//! Schema (version 1):
//!
//! ```json
//! {"type":"run","schema":1,"command":"optimize","seed":7,"wall_ms":153.2,
//!  "provenance":{"host_cpus":8,"threads":4,"segrout_threads":"4",
//!                "git_rev":"8a5946e...","fast":false,"debug":false},
//!  "metrics":{"heurospf.iterations":{"kind":"counter","value":412}, ...},
//!  "trace":[{"type":"trace","seq":0,...}, ...]}
//! ```
//!
//! The git revision is read straight from `.git/HEAD` (following one level
//! of `ref:` indirection, then `packed-refs`) — no subprocess, and a clean
//! `null` outside a checkout.

use crate::json::Json;
use crate::log::elapsed_us;
use crate::metrics::{registry, Metric};
use crate::trace::trace_json_records;
use std::path::{Path, PathBuf};

/// The run-artifact schema version written by [`run_artifact`].
pub const RUN_SCHEMA_VERSION: i64 = 1;

fn find_git_dir() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let candidate = dir.join(".git");
        if candidate.is_dir() {
            return Some(candidate);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// The current git commit hash, read directly from the repository metadata
/// (no `git` subprocess). `None` outside a checkout or on unreadable refs.
pub fn git_rev() -> Option<String> {
    let git = find_git_dir()?;
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    let Some(refname) = head.strip_prefix("ref: ") else {
        // Detached HEAD: the file holds the hash itself.
        return (!head.is_empty()).then(|| head.to_string());
    };
    if let Ok(hash) = std::fs::read_to_string(git.join(refname)) {
        let hash = hash.trim();
        if !hash.is_empty() {
            return Some(hash.to_string());
        }
    }
    // Loose ref absent: the ref may be packed.
    let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
    for line in packed.lines() {
        if let Some((hash, name)) = line.split_once(' ') {
            if name == refname {
                return Some(hash.to_string());
            }
        }
    }
    None
}

/// Host and configuration provenance for the current process:
/// `{host_cpus, threads, segrout_threads, git_rev, fast, debug}`.
///
/// `threads` is the effective worker-pool width (the `par.threads` gauge if
/// some code set it, otherwise `SEGROUT_THREADS`, otherwise the host core
/// count — mirroring the pool's own sizing rule).
pub fn provenance() -> Json {
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let env_threads = std::env::var("SEGROUT_THREADS").ok();
    let gauge = registry().gauge("par.threads").get();
    let threads = if gauge >= 1.0 {
        gauge as usize
    } else {
        env_threads
            .as_deref()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(host_cpus)
    };
    Json::obj([
        ("host_cpus", Json::from(host_cpus)),
        ("threads", Json::from(threads)),
        ("segrout_threads", Json::from(env_threads)),
        ("git_rev", Json::from(git_rev())),
        (
            "fast",
            Json::from(
                std::env::var("SEGROUT_FAST")
                    .map(|v| v == "1")
                    .unwrap_or(false),
            ),
        ),
        ("debug", Json::from(cfg!(debug_assertions))),
    ])
}

fn metric_summary(metric: &Metric) -> Json {
    match metric {
        Metric::Counter(c) => Json::obj([
            ("kind", Json::from("counter")),
            ("value", Json::from(c.get())),
        ]),
        Metric::Gauge(g) => Json::obj([
            ("kind", Json::from("gauge")),
            ("value", Json::from(g.get())),
        ]),
        Metric::Histogram(h) => Json::obj([
            ("kind", Json::from("histogram")),
            ("count", Json::from(h.count())),
            ("mean", Json::from(h.mean())),
            ("p50", Json::from(h.quantile(0.5))),
            ("p99", Json::from(h.quantile(0.99))),
            (
                "max",
                if h.count() == 0 {
                    Json::Null
                } else {
                    Json::from(h.max())
                },
            ),
        ]),
        Metric::Series(s) => {
            let v = s.values();
            Json::obj([
                ("kind", Json::from("series")),
                ("n", Json::from(v.len())),
                ("first", Json::from(v.first().copied())),
                ("last", Json::from(v.last().copied())),
            ])
        }
    }
}

/// Builds the run artifact for the current process state: provenance, a
/// compact snapshot of every registered metric, and the recorded trace.
/// `extra` pairs are appended at top level (e.g. `("topology", ...)`).
pub fn run_artifact(command: &str, seed: Option<u64>, extra: &[(&str, Json)]) -> Json {
    let metrics: Vec<(String, Json)> = registry()
        .snapshot()
        .iter()
        .map(|(name, m)| (name.clone(), metric_summary(m)))
        .collect();
    let mut pairs: Vec<(String, Json)> = vec![
        ("type".to_string(), Json::from("run")),
        ("schema".to_string(), Json::from(RUN_SCHEMA_VERSION)),
        ("command".to_string(), Json::from(command)),
        ("seed".to_string(), Json::from(seed)),
        ("wall_ms".to_string(), Json::from(elapsed_us() as f64 / 1e3)),
        ("provenance".to_string(), provenance()),
        ("metrics".to_string(), Json::Obj(metrics)),
        ("trace".to_string(), Json::Arr(trace_json_records())),
    ];
    for (k, v) in extra {
        pairs.push(((*k).to_string(), v.clone()));
    }
    Json::Obj(pairs)
}

/// Writes [`run_artifact`] to `path` (single pretty-free JSON document plus
/// a trailing newline).
///
/// # Errors
/// Propagates file-write errors.
pub fn write_run_artifact(
    path: &Path,
    command: &str,
    seed: Option<u64>,
    extra: &[(&str, Json)],
) -> std::io::Result<()> {
    let mut text = run_artifact(command, seed, extra).render();
    text.push('\n');
    std::fs::write(path, text)
}

/// Adds a `provenance` object to an existing JSON object (bench records);
/// non-objects are returned unchanged.
pub fn attach_provenance(record: Json) -> Json {
    match record {
        Json::Obj(mut pairs) => {
            pairs.push(("provenance".to_string(), provenance()));
            Json::Obj(pairs)
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provenance_has_host_and_rev_fields() {
        let p = provenance();
        assert!(p["host_cpus"].as_i64().unwrap_or(0) >= 1);
        assert!(p["threads"].as_i64().unwrap_or(0) >= 1);
        // git_rev may be null outside a checkout; inside one it is a hash.
        if let Some(rev) = p["git_rev"].as_str() {
            assert!(rev.len() >= 7, "short rev: {rev}");
            assert!(rev.chars().all(|c| c.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn run_artifact_round_trips_through_parse() {
        let art = run_artifact("unit-test", Some(42), &[("extra_key", Json::from(7))]);
        let text = art.render();
        let parsed = Json::parse(&text).expect("artifact parses");
        assert_eq!(parsed["type"].as_str(), Some("run"));
        assert_eq!(parsed["schema"].as_i64(), Some(RUN_SCHEMA_VERSION));
        assert_eq!(parsed["command"].as_str(), Some("unit-test"));
        assert_eq!(parsed["seed"].as_i64(), Some(42));
        assert_eq!(parsed["extra_key"].as_i64(), Some(7));
        assert!(parsed["wall_ms"].as_f64().is_some());
        assert!(parsed.get("metrics").is_some());
        assert!(parsed["trace"].as_arr().is_some());
    }

    #[test]
    fn attach_provenance_appends_to_objects_only() {
        let rec = attach_provenance(Json::obj([("x", 1i64)]));
        assert!(rec.get("provenance").is_some());
        let passthrough = attach_provenance(Json::from(3i64));
        assert_eq!(passthrough.as_i64(), Some(3));
    }
}
