//! RAII span timers.
//!
//! `let _s = obs::span("heurospf");` times the enclosing scope with
//! [`std::time::Instant`]. On drop the span records its wall-time into the
//! `time.<name>` histogram (milliseconds) and, when `debug` logging is
//! enabled, emits `span.end` with the duration. Spans nest: a thread-local
//! depth counter indents the stderr pretty-printer output.

use crate::log::{self, Level};
use crate::metrics::{registry, time_bounds_ms};
use std::cell::Cell;
use std::time::Instant;

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Current span nesting depth on this thread.
pub fn current_depth() -> usize {
    DEPTH.with(Cell::get)
}

/// An in-flight span; created by [`span`], finished on drop.
pub struct Span {
    name: &'static str,
    start: Instant,
    /// Whether this span opened a profiler frame. Captured at construction
    /// so enter/exit stay balanced even if profiling is toggled mid-span.
    profiled: bool,
}

/// Starts a named span. Keep the guard alive for the region being timed.
pub fn span(name: &'static str) -> Span {
    if log::enabled(Level::Debug) {
        log::emit(
            Level::Debug,
            "span.start",
            &[("span", crate::Json::from(name))],
        );
    }
    DEPTH.with(|d| d.set(d.get() + 1));
    let profiled = crate::profile::profiling();
    if profiled {
        crate::profile::frame_enter(name);
    }
    Span {
        name,
        start: Instant::now(),
        profiled,
    }
}

impl Span {
    /// Elapsed time so far, in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let ms = self.elapsed_ms();
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        if self.profiled {
            crate::profile::frame_exit(ms);
        }
        registry()
            .histogram(&format!("time.{}", self.name), time_bounds_ms())
            .observe(ms);
        if log::enabled(Level::Debug) {
            log::emit(
                Level::Debug,
                "span.end",
                &[
                    ("span", crate::Json::from(self.name)),
                    ("ms", crate::Json::from(ms)),
                ],
            );
        }
    }
}
