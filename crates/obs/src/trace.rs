//! Convergence traces: the optimizer flight recorder.
//!
//! A *trace point* is one `(seq, t_us, iteration, event, phi, mlu)` tuple
//! recorded at a milestone of an anytime optimizer — every accepted move of
//! the local searches, every incumbent/node milestone of the branch-and-bound.
//! The sequence of points is the quality-vs-time curve the paper's heuristics
//! are evaluated by (MLU over wall-time), which flat counters and final
//! gauges cannot reconstruct.
//!
//! Recording is off by default and gated by one relaxed atomic load:
//! [`trace_point`] returns immediately when no trace has been requested, so
//! instrumented hot loops stay inside the disabled-path overhead envelope.
//! When enabled ([`set_trace_enabled`]), points are appended to a global
//! in-memory buffer under a mutex — trace points are emitted on the serial
//! commit path of every optimizer (never inside parallel probe closures), so
//! the buffer sees a deterministic, totally ordered stream at any thread
//! count.
//!
//! The buffer can be drained ([`take_trace`]), snapshotted
//! ([`trace_points`]), or written as JSON-lines ([`write_trace_jsonl`]) with
//! one record per point:
//!
//! ```json
//! {"type":"trace","seq":3,"t_us":15210,"iter":41,"event":"heurospf.accept",
//!  "phi":12.25,"mlu":1.5312}
//! ```
//!
//! `phi` is `null` for optimizers that do not track the Fortz–Thorup cost
//! (GreedyWPO probes only MLU); for the MILP the pair is reinterpreted as
//! `(dual bound, incumbent objective)` — see the event names.

use crate::json::Json;
use crate::log::elapsed_us;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// One recorded milestone of an optimizer run.
#[derive(Clone, Debug)]
pub struct TracePoint {
    /// Position in the recorded stream (0-based, strictly increasing).
    pub seq: u64,
    /// Microseconds since the first observability call of the process.
    pub t_us: u64,
    /// Optimizer-local iteration counter (candidate evaluations, B&B nodes —
    /// whatever the emitting loop counts).
    pub iter: u64,
    /// Dotted event name (`heurospf.accept`, `milp.incumbent`).
    pub event: &'static str,
    /// Best Φ (Fortz–Thorup congestion cost) at this point; `NaN` when the
    /// optimizer does not track Φ (rendered as JSON `null`). For
    /// `milp.*` events this carries the global dual bound instead.
    pub phi: f64,
    /// Best MLU at this point. For `milp.*` events this carries the
    /// incumbent objective (`NaN` before the first incumbent).
    pub mlu: f64,
}

impl TracePoint {
    /// The point as one JSON record (`{"type":"trace",...}`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("type", Json::from("trace")),
            ("seq", Json::from(self.seq)),
            ("t_us", Json::from(self.t_us)),
            ("iter", Json::from(self.iter)),
            ("event", Json::from(self.event)),
            ("phi", Json::from(self.phi)),
            ("mlu", Json::from(self.mlu)),
        ])
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn buffer() -> &'static Mutex<Vec<TracePoint>> {
    static BUF: OnceLock<Mutex<Vec<TracePoint>>> = OnceLock::new();
    BUF.get_or_init(|| Mutex::new(Vec::new()))
}

/// Turns the trace recorder on or off. The buffer is kept across toggles;
/// use [`reset_trace`] to clear it.
pub fn set_trace_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// `true` when trace points are currently recorded. This is the cheap guard
/// the disabled path reduces to.
#[inline]
pub fn trace_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Records one milestone. A no-op (one relaxed atomic load) when tracing is
/// disabled.
#[inline]
pub fn trace_point(event: &'static str, iter: u64, phi: f64, mlu: f64) {
    if !trace_enabled() {
        return;
    }
    let t_us = elapsed_us();
    let mut buf = buffer().lock().expect("trace buffer poisoned");
    let seq = buf.len() as u64;
    buf.push(TracePoint {
        seq,
        t_us,
        iter,
        event,
        phi,
        mlu,
    });
}

/// Snapshot of all recorded points, in recording order.
pub fn trace_points() -> Vec<TracePoint> {
    buffer().lock().expect("trace buffer poisoned").clone()
}

/// Drains the buffer, returning all recorded points.
pub fn take_trace() -> Vec<TracePoint> {
    std::mem::take(&mut *buffer().lock().expect("trace buffer poisoned"))
}

/// Clears the buffer (between benchmark repetitions or tests).
pub fn reset_trace() {
    buffer().lock().expect("trace buffer poisoned").clear();
}

/// Number of recorded points.
pub fn trace_len() -> usize {
    buffer().lock().expect("trace buffer poisoned").len()
}

/// Writes every recorded point to `path` as JSON-lines, returning the number
/// of points written. The buffer is left intact.
///
/// # Errors
/// Propagates file-creation and write errors.
pub fn write_trace_jsonl(path: &Path) -> std::io::Result<usize> {
    let points = trace_points();
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    for p in &points {
        writeln!(out, "{}", p.to_json().render())?;
    }
    out.flush()?;
    Ok(points.len())
}

/// The trace as JSON records (for embedding into a run artifact).
pub fn trace_json_records() -> Vec<Json> {
    trace_points().iter().map(TracePoint::to_json).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The trace buffer is process-global; unit tests in this module run in
    // one binary, so they serialize on a local lock and reset around use.
    fn locked() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().expect("test lock")
    }

    #[test]
    fn disabled_recorder_drops_points() {
        let _g = locked();
        set_trace_enabled(false);
        reset_trace();
        trace_point("unit.test", 1, 0.5, 1.5);
        assert_eq!(trace_len(), 0);
    }

    #[test]
    fn points_are_sequenced_and_timestamped() {
        let _g = locked();
        reset_trace();
        set_trace_enabled(true);
        trace_point("unit.a", 1, 2.0, 3.0);
        trace_point("unit.b", 2, f64::NAN, 2.5);
        set_trace_enabled(false);
        let pts = take_trace();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].seq, 0);
        assert_eq!(pts[1].seq, 1);
        assert!(pts[0].t_us <= pts[1].t_us);
        assert_eq!(pts[1].event, "unit.b");
        assert!(pts[1].phi.is_nan());
        // NaN phi renders as JSON null; the record round-trips.
        let rendered = pts[1].to_json().render();
        let j = Json::parse(&rendered).expect("record parses");
        assert_eq!(j["phi"], Json::Null);
        assert_eq!(j["type"].as_str(), Some("trace"));
        assert_eq!(j["mlu"].as_f64(), Some(2.5));
    }
}
