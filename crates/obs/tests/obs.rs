//! Integration tests for segrout-obs: histogram bucket semantics and
//! quantile estimation, counter atomicity under real threads, span nesting
//! and timing monotonicity, and the JSONL event/record round-trip.
//!
//! Global state (registry, span depth) is shared across the test binary, so
//! every test uses its own metric names, and sink tests drive a `JsonlSink`
//! directly instead of mutating the global sink stack.

use segrout_obs::{registry, time_bounds_ms, Event, Json, JsonlSink, Level, Sink};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

// ---------- histograms ----------

#[test]
fn histogram_bucket_boundaries_are_inclusive_upper() {
    let h = registry().histogram("test.hist.bounds", &[1.0, 2.0, 4.0]);
    // Bucket i counts v <= bounds[i]; the last bucket is overflow.
    for v in [0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0] {
        h.observe(v);
    }
    assert_eq!(h.bucket_counts(), vec![2, 2, 2, 1]);
    assert_eq!(h.count(), 7);
    assert!((h.sum() - 17.0).abs() < 1e-12);
    assert_eq!(h.min(), 0.5);
    assert_eq!(h.max(), 5.0);
}

#[test]
fn histogram_quantiles_interpolate_and_clamp() {
    let h = registry().histogram("test.hist.quantiles", &[10.0, 20.0, 30.0]);
    for v in [2.0, 4.0, 6.0, 8.0, 12.0, 14.0, 16.0, 18.0, 22.0, 28.0] {
        h.observe(v);
    }
    // Quantiles never leave the observed range.
    assert_eq!(h.quantile(0.0), 2.0);
    assert_eq!(h.quantile(1.0), 28.0);
    // The median of 10 samples falls in the second bucket (10, 20].
    let p50 = h.quantile(0.5);
    assert!((10.0..=20.0).contains(&p50), "p50 = {p50}");
    // Monotone in q.
    let qs: Vec<f64> = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99]
        .iter()
        .map(|&q| h.quantile(q))
        .collect();
    for w in qs.windows(2) {
        assert!(w[0] <= w[1] + 1e-12, "quantiles must be monotone: {qs:?}");
    }
}

#[test]
fn empty_histogram_is_well_defined() {
    let h = registry().histogram("test.hist.empty", time_bounds_ms());
    assert_eq!(h.count(), 0);
    assert_eq!(h.mean(), 0.0);
    assert_eq!(h.quantile(0.5), 0.0);
}

#[test]
fn histogram_single_observation_quantiles_collapse() {
    let h = registry().histogram("test.hist.single", &[1.0, 10.0]);
    h.observe(3.5);
    for q in [0.0, 0.5, 0.95, 1.0] {
        assert_eq!(h.quantile(q), 3.5);
    }
}

// ---------- counters ----------

#[test]
fn counter_is_atomic_under_threads() {
    let c = registry().counter("test.counter.atomic");
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let c = Arc::clone(&c);
            thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("worker thread panicked");
    }
    assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
}

#[test]
fn counter_handles_alias_the_same_metric() {
    let a = registry().counter("test.counter.alias");
    let b = registry().counter("test.counter.alias");
    a.add(3);
    b.add(4);
    assert_eq!(a.get(), 7);
}

// ---------- gauges and series ----------

#[test]
fn gauge_last_write_wins() {
    let g = registry().gauge("test.gauge");
    g.set(1.5);
    g.set(-2.25);
    assert_eq!(g.get(), -2.25);
}

#[test]
fn series_preserves_order() {
    let s = registry().series("test.series");
    for i in 0..5 {
        s.push(f64::from(i));
    }
    assert_eq!(s.values(), vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    assert_eq!(s.len(), 5);
}

// ---------- spans ----------

#[test]
fn span_nesting_tracks_depth() {
    // Runs in its own thread so parallel tests (which may open spans of
    // their own) cannot perturb the thread-local depth.
    thread::spawn(|| {
        assert_eq!(segrout_obs::current_depth(), 0);
        {
            let _outer = segrout_obs::span("test_outer");
            assert_eq!(segrout_obs::current_depth(), 1);
            {
                let _inner = segrout_obs::span("test_inner");
                assert_eq!(segrout_obs::current_depth(), 2);
            }
            assert_eq!(segrout_obs::current_depth(), 1);
        }
        assert_eq!(segrout_obs::current_depth(), 0);
    })
    .join()
    .expect("span thread");
}

#[test]
fn span_timing_is_monotone_and_recorded() {
    {
        let span = segrout_obs::span("test_timing");
        thread::sleep(Duration::from_millis(5));
        let early = span.elapsed_ms();
        assert!(early >= 5.0, "elapsed {early} ms after a 5 ms sleep");
        thread::sleep(Duration::from_millis(1));
        let later = span.elapsed_ms();
        assert!(later >= early, "elapsed time must not go backwards");
    }
    // Dropping the span records its duration into `time.<name>`.
    let h = registry().histogram("time.test_timing", time_bounds_ms());
    assert_eq!(h.count(), 1);
    assert!(h.min() >= 5.0);
}

// ---------- JSONL round-trip ----------

#[test]
fn jsonl_sink_round_trips_events_and_records() {
    let dir = std::env::temp_dir().join("segrout-obs-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.jsonl");

    {
        let mut sink = JsonlSink::create(&path).expect("create sink");
        sink.event(&Event {
            level: Level::Info,
            name: "unit.test",
            fields: &[
                ("answer", Json::from(42)),
                ("ratio", Json::from(0.5)),
                ("label", Json::from("a \"quoted\" name")),
            ],
            t_us: 1234,
            depth: 1,
        });
        sink.record(&Json::obj([
            ("type", Json::from("counter")),
            ("name", Json::from("unit.count")),
            ("value", Json::from(7u64)),
        ]));
        sink.flush();
    }

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2);

    let event = Json::parse(lines[0]).expect("event line parses");
    assert_eq!(event["type"], "event");
    assert_eq!(event["name"], "unit.test");
    assert_eq!(event["level"], "info");
    assert_eq!(event["t_us"].as_i64(), Some(1234));
    assert_eq!(event["fields"]["answer"].as_i64(), Some(42));
    assert_eq!(event["fields"]["ratio"].as_f64(), Some(0.5));
    assert_eq!(event["fields"]["label"], "a \"quoted\" name");

    let record = Json::parse(lines[1]).expect("record line parses");
    assert_eq!(record["type"], "counter");
    assert_eq!(record["name"], "unit.count");
    assert_eq!(record["value"].as_i64(), Some(7));
}

// ---------- registry reporting ----------

#[test]
fn registry_records_and_summary_cover_all_kinds() {
    registry().counter("test.report.count").add(2);
    registry().gauge("test.report.gauge").set(1.25);
    registry()
        .histogram("test.report.hist", &[1.0, 2.0])
        .observe(1.5);
    registry().series("test.report.series").push(9.0);

    let records = registry().to_json_records();
    let find = |name: &str| {
        records
            .iter()
            .find(|r| r["name"] == name)
            .unwrap_or_else(|| panic!("record for {name}"))
    };
    assert_eq!(find("test.report.count")["type"], "counter");
    assert_eq!(find("test.report.gauge")["value"].as_f64(), Some(1.25));
    assert_eq!(find("test.report.hist")["count"].as_i64(), Some(1));
    assert_eq!(
        find("test.report.series")["values"]
            .as_arr()
            .map(<[Json]>::len),
        Some(1)
    );

    let table = registry().summary_table();
    for name in [
        "test.report.count",
        "test.report.gauge",
        "test.report.hist",
        "test.report.series",
    ] {
        assert!(table.contains(name), "summary table lists {name}");
    }
}

// ---------- histogram edge cases (flight-recorder profiler inputs) ----------

#[test]
fn histogram_single_finite_bucket_stays_in_range() {
    // The smallest legal histogram: one finite bucket plus overflow.
    let h = segrout_obs::Histogram::with_bounds(&[5.0]);
    for v in [1.0, 2.0, 5.0, 9.0] {
        h.observe(v);
    }
    assert_eq!(h.bucket_counts(), vec![3, 1]);
    for q in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
        let est = h.quantile(q);
        assert!(
            (1.0..=9.0).contains(&est),
            "quantile({q}) = {est} left the observed range"
        );
    }
    assert_eq!(h.quantile(1.0), 9.0);
}

#[test]
fn histogram_overflow_bucket_quantiles_clamp_to_observed_max() {
    // Every observation lands in the overflow bucket; quantiles must
    // interpolate between the last bound and the observed max, never beyond.
    let h = segrout_obs::Histogram::with_bounds(&[1.0, 2.0]);
    for v in [10.0, 20.0, 30.0] {
        h.observe(v);
    }
    assert_eq!(h.bucket_counts(), vec![0, 0, 3]);
    for q in [0.1, 0.5, 0.9, 1.0] {
        let est = h.quantile(q);
        assert!(
            (10.0..=30.0).contains(&est),
            "quantile({q}) = {est} outside [10, 30]"
        );
    }
    assert_eq!(h.quantile(1.0), 30.0);
}

#[test]
fn histogram_concurrent_recording_is_lossless() {
    let h = registry().histogram("test.hist.concurrent", &[10.0, 100.0, 1000.0]);
    const THREADS: usize = 4;
    const PER_THREAD: usize = 5_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Spread observations across all four buckets.
                    h.observe(((t * PER_THREAD + i) % 2000) as f64);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("recorder thread panicked");
    }
    let total = (THREADS * PER_THREAD) as u64;
    assert_eq!(h.count(), total);
    assert_eq!(h.bucket_counts().iter().sum::<u64>(), total);
    assert_eq!(h.min(), 0.0);
    assert_eq!(h.max(), 1999.0);
}

// ---------- convergence-trace ordering ----------

/// The trace buffer is process-global, so tests touching it serialize on
/// this lock and reset the buffer around use.
static TRACE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn assert_trace_well_ordered(n_expected: usize) {
    let pts = segrout_obs::trace_points();
    assert_eq!(pts.len(), n_expected);
    for (i, p) in pts.iter().enumerate() {
        assert_eq!(p.seq, i as u64, "seq must be dense and gap-free");
    }
    for w in pts.windows(2) {
        assert!(
            w[0].t_us <= w[1].t_us,
            "timestamps must be non-decreasing in seq order"
        );
    }
}

#[test]
fn trace_points_are_totally_ordered_single_thread() {
    let _guard = TRACE_LOCK.lock().expect("trace lock");
    segrout_obs::reset_trace();
    segrout_obs::set_trace_enabled(true);
    for i in 0..100u64 {
        segrout_obs::trace_point("test.single", i, 1.0, 2.0);
    }
    segrout_obs::set_trace_enabled(false);
    assert_trace_well_ordered(100);
    segrout_obs::reset_trace();
}

#[test]
fn trace_points_are_totally_ordered_under_four_threads() {
    let _guard = TRACE_LOCK.lock().expect("trace lock");
    segrout_obs::reset_trace();
    segrout_obs::set_trace_enabled(true);
    const THREADS: usize = 4;
    const PER_THREAD: usize = 250;
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            thread::spawn(|| {
                for i in 0..PER_THREAD {
                    segrout_obs::trace_point("test.multi", i as u64, 0.5, 1.5);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("trace thread panicked");
    }
    segrout_obs::set_trace_enabled(false);
    // Even with concurrent emitters, the recorded sequence is a single
    // total order: dense seq numbers and non-decreasing timestamps.
    assert_trace_well_ordered(THREADS * PER_THREAD);
    segrout_obs::reset_trace();
}

// ---------- disabled-path overhead envelope ----------

#[test]
fn disabled_trace_point_cost_fits_overhead_envelope() {
    let _guard = TRACE_LOCK.lock().expect("trace lock");
    segrout_obs::set_trace_enabled(false);
    segrout_obs::reset_trace();
    // With tracing off, trace_point is one relaxed atomic load. A HeurOSPF
    // descent reaches the trace call sites a few thousand times per second
    // of search, so staying under the 1–2% overhead envelope needs the
    // disabled path well below ~1 µs/call. The bound here is deliberately
    // loose (debug builds, CI noise) yet still ~50x tighter than the budget
    // implied by per-second call-site counts.
    const CALLS: u32 = 1_000_000;
    let t0 = std::time::Instant::now();
    for i in 0..CALLS {
        segrout_obs::trace_point("test.disabled", u64::from(i), 0.0, 0.0);
    }
    let per_call_ns = t0.elapsed().as_nanos() as f64 / f64::from(CALLS);
    assert_eq!(
        segrout_obs::trace_len(),
        0,
        "disabled tracing recorded points"
    );
    assert!(
        per_call_ns < 1_000.0,
        "disabled trace_point costs {per_call_ns:.1} ns/call (budget 1000)"
    );
}

#[test]
fn level_parsing_accepts_all_names() {
    for (s, l) in [
        ("error", Level::Error),
        ("WARN", Level::Warn),
        ("warning", Level::Warn),
        ("Info", Level::Info),
        ("debug", Level::Debug),
        ("trace", Level::Trace),
    ] {
        assert_eq!(s.parse::<Level>().unwrap(), l);
    }
    assert!("loud".parse::<Level>().is_err());
}
