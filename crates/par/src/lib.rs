//! # segrout-par — deterministic parallelism for the optimizer hot paths
//!
//! A zero-dependency worker pool with chunked [`par_map`] /
//! [`par_map_reduce`] over index ranges. The design goal is a hard
//! **determinism contract**: for a pure per-index function `f`, every result
//! of this crate is **bit-identical at any thread count** —
//! `SEGROUT_THREADS=1` (the serial reference), `2`, `8`, or the machine
//! default all produce the same bytes.
//!
//! How the contract is met:
//!
//! * [`par_map`] writes each `f(i)` into a dedicated result slot `i`; the
//!   scheduling order can vary, the output vector cannot.
//! * [`par_map_reduce`] folds the mapped values **in index order on the
//!   calling thread** — floating-point accumulation order is fixed, so
//!   non-associativity of `f64` addition never leaks thread-count noise.
//! * With an effective thread count of 1 the pool is bypassed entirely and
//!   `f` runs inline on the caller — the serial path is the parallel path
//!   with the scheduling removed, not a separate code path.
//!
//! ## Execution model
//!
//! A process-wide pool of parked worker threads serves all calls. Each
//! parallel batch claims chunks of the index range from a shared atomic
//! cursor; the **caller participates** (it drains chunks inline like any
//! worker), which makes nested `par_map` calls deadlock-free by
//! construction: a batch never depends on queue service for progress, only
//! on chunks already claimed by running workers. Panics in `f` are caught,
//! the batch is drained, and the first payload is re-thrown on the caller
//! ([`std::panic::resume_unwind`]).
//!
//! ## Thread-count knobs
//!
//! Priority order: [`set_threads`] (the `--threads` CLI flag) >
//! `SEGROUT_THREADS` > [`std::thread::available_parallelism`].
//!
//! ## Observability
//!
//! The pool feeds the `segrout-obs` registry: `par.tasks` (chunks executed,
//! flushed once per batch participation — the per-worker batched-counter
//! pattern), `par.batches` (parallel batches started),
//! `par.steal_or_queue_wait` (milliseconds workers spend parked waiting for
//! work) and the `time.par.batch` span histogram. The serial inline path
//! records nothing, so `SEGROUT_THREADS=1` runs carry zero overhead.

#![warn(missing_docs)]

use segrout_obs::{Counter, Histogram};
use std::collections::VecDeque;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Hard cap on pool workers, guarding against absurd `--threads` values.
const MAX_WORKERS: usize = 512;

/// Process-wide thread-count override (0 = unset, fall back to the
/// environment / hardware default).
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the effective thread count for every subsequent parallel call
/// (the `--threads` flag). `0` restores the default resolution order
/// (`SEGROUT_THREADS`, then [`std::thread::available_parallelism`]).
///
/// Changing the thread count never changes any result — only how fast it
/// is produced.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n, Ordering::SeqCst);
}

/// The effective thread count: [`set_threads`] override if set, else
/// `SEGROUT_THREADS`, else [`std::thread::available_parallelism`].
pub fn threads() -> usize {
    let o = OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o.min(MAX_WORKERS);
    }
    default_threads()
}

/// Resolves (once) the environment / hardware default thread count.
fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("SEGROUT_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .min(MAX_WORKERS)
    })
}

/// Monomorphized chunk executor: runs `f(i)` for `i in start..end` and
/// writes each value into result slot `i`.
///
/// # Safety
/// `data` must point to a live `F`, `results` to a live array of at least
/// `end` `MaybeUninit<R>` slots, and the caller must own indices
/// `start..end` exclusively.
type ChunkFn = unsafe fn(data: *const (), results: *mut (), start: usize, end: usize);

/// Shared control block of one parallel batch.
///
/// The block is reference-counted into the pool queue, so clones of it can
/// outlive the owning [`par_map`] call (workers may pop a queued job after
/// the batch already completed). All fields a *stale* job touches are
/// owned by value or atomic; the raw `data` / `results` pointers into the
/// caller's frame are only dereferenced after winning a chunk claim
/// (`start < n`), which stale jobs — by construction — cannot do.
struct Batch {
    /// Type-erased pointer to the caller's `f` closure.
    data: *const (),
    /// Type-erased pointer to the caller's `MaybeUninit<R>` result array.
    results: *mut (),
    /// Monomorphized executor for one chunk.
    call: ChunkFn,
    /// Number of items in the batch.
    n: usize,
    /// Chunk size used when claiming index ranges.
    chunk: usize,
    /// Next unclaimed index (monotone; claims beyond `n` are stale no-ops).
    next: AtomicUsize,
    /// Number of completed items; the batch is done at `n`.
    completed: AtomicUsize,
    /// First panic payload raised by `f`, re-thrown on the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
    /// Paired with `done` for the caller's completion wait.
    done_lock: Mutex<()>,
    /// Notified when `completed` reaches `n`.
    done: Condvar,
}

// SAFETY: the raw pointers target the owning caller's frame, which outlives
// every dereference: `run` only dereferences them after claiming a chunk,
// and the caller blocks until all chunks complete. Claims hand out disjoint
// index ranges, so slot writes never alias; `F: Sync` / `R: Send` are
// enforced by `par_map`'s bounds before type erasure.
unsafe impl Send for Batch {}
unsafe impl Sync for Batch {}

impl Batch {
    /// Claims and executes chunks until the range is exhausted. Returns the
    /// number of chunks this participant executed.
    fn run(&self) -> u64 {
        let mut chunks = 0u64;
        loop {
            let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.n {
                return chunks;
            }
            let end = (start + self.chunk).min(self.n);
            // SAFETY: `start < n` proves the owning `par_map` has not
            // returned (it waits for all chunks), so `data` and `results`
            // are alive, and the fetch_add above granted this thread
            // exclusive ownership of slots `start..end`.
            let outcome = catch_unwind(AssertUnwindSafe(|| unsafe {
                (self.call)(self.data, self.results, start, end)
            }));
            if let Err(payload) = outcome {
                let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
                slot.get_or_insert(payload);
            }
            chunks += 1;
            // AcqRel: result writes above happen-before the caller's
            // Acquire load of `completed` (panicked chunks count as
            // completed so the caller always wakes).
            let done = self.completed.fetch_add(end - start, Ordering::AcqRel) + (end - start);
            if done == self.n {
                drop(self.done_lock.lock().unwrap_or_else(|e| e.into_inner()));
                self.done.notify_all();
            }
        }
    }
}

/// The process-wide worker pool.
struct Pool {
    /// Pending batch jobs; workers pop, callers push.
    queue: Mutex<VecDeque<Arc<Batch>>>,
    /// Signals workers that `queue` gained a job.
    job_ready: Condvar,
    /// Number of worker threads spawned so far (grown on demand).
    spawned: Mutex<usize>,
    /// `par.tasks`: chunks executed, flushed per batch participation.
    tasks: Arc<Counter>,
    /// `par.batches`: parallel batches started.
    batches: Arc<Counter>,
    /// `par.steal_or_queue_wait`: ms workers spend parked awaiting work.
    wait: Arc<Histogram>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        job_ready: Condvar::new(),
        spawned: Mutex::new(0),
        tasks: segrout_obs::counter("par.tasks"),
        batches: segrout_obs::counter("par.batches"),
        wait: segrout_obs::histogram("par.steal_or_queue_wait", segrout_obs::time_bounds_ms()),
    })
}

impl Pool {
    /// Grows the pool to at least `target` parked workers.
    fn ensure_workers(&'static self, target: usize) {
        let target = target.min(MAX_WORKERS);
        let mut spawned = self.spawned.lock().unwrap_or_else(|e| e.into_inner());
        while *spawned < target {
            let id = *spawned;
            std::thread::Builder::new()
                .name(format!("segrout-par-{id}"))
                .spawn(move || self.worker_loop())
                .expect("spawning a pool worker thread");
            *spawned += 1;
        }
    }

    /// A worker: pop a batch job, drain chunks, flush counters, repeat.
    fn worker_loop(&'static self) {
        loop {
            let job = {
                let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(job) = q.pop_front() {
                        break job;
                    }
                    let parked = Instant::now();
                    q = self.job_ready.wait(q).unwrap_or_else(|e| e.into_inner());
                    self.wait.observe(parked.elapsed().as_secs_f64() * 1e3);
                }
            };
            let chunks = job.run();
            if chunks > 0 {
                // Per-worker batched merge into the global registry: one
                // atomic add per batch participation, not per chunk.
                self.tasks.add(chunks);
            }
        }
    }
}

/// Maps `f` over `0..n`, returning `vec![f(0), f(1), …, f(n-1)]`.
///
/// Work is chunked over the pool; results land in per-index slots, so the
/// output is **bit-identical at any thread count**. With an effective
/// thread count of 1 (or `n <= 1`) `f` runs inline with zero pool overhead
/// — that inline execution *is* the serial reference the determinism tests
/// compare against.
///
/// # Panics
/// If `f` panics for any index, the batch is drained and the first payload
/// is re-thrown on the caller. Result values already produced are leaked
/// (not dropped) in that case.
pub fn par_map<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_min(n, DEFAULT_SERIAL_CUTOFF, f)
}

/// Default serial-fallback threshold of [`par_map`]: batches smaller than
/// this run inline on the caller even when the pool has threads — enqueue,
/// wakeup and claim traffic cost more than a couple of items of work.
pub const DEFAULT_SERIAL_CUTOFF: usize = 4;

/// [`par_map`] with an explicit work threshold: batches with
/// `n < serial_below` run inline on the caller instead of dispatching to
/// the pool. The threshold only affects scheduling, never results — the
/// inline path is the serial reference the determinism contract is pinned
/// to.
///
/// Callers whose per-item work is tiny (e.g. GreedyWPO's sparse
/// single-segment probes, microseconds each) should pass a threshold in the
/// hundreds; the default [`par_map`] threshold assumes items worth at least
/// a Dijkstra.
pub fn par_map_min<R, F>(n: usize, serial_below: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let t = threads();
    if t <= 1 || n <= 1 || n < serial_below {
        return (0..n).map(f).collect();
    }
    par_map_chunked(n, auto_chunk(n, t), f)
}

/// Default chunk size. Small batches get ≈2 chunks per participant —
/// dispatch and claim traffic dominate, so fewer, larger chunks win; big
/// batches get ≈4 per participant for load balancing.
fn auto_chunk(n: usize, t: usize) -> usize {
    if n < 64 * t {
        n.div_ceil(2 * t).max(1)
    } else {
        (n / (4 * t)).max(1)
    }
}

/// [`par_map`] with an explicit chunk size (indices are claimed in runs of
/// `chunk`). Chunking only affects scheduling — never results.
pub fn par_map_chunked<R, F>(n: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let t = threads();
    if t <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let pool = pool();
    let _span = segrout_obs::span("par.batch");
    pool.batches.inc();

    let mut results: Vec<MaybeUninit<R>> = Vec::with_capacity(n);
    // SAFETY: `MaybeUninit` requires no initialization; length == capacity.
    unsafe { results.set_len(n) };

    /// Monomorphized [`ChunkFn`] for this `(R, F)` pair.
    ///
    /// # Safety
    /// See [`ChunkFn`]: live `f`, live result array, exclusive slots.
    unsafe fn chunk_shim<R, F: Fn(usize) -> R>(
        data: *const (),
        results: *mut (),
        start: usize,
        end: usize,
    ) {
        // SAFETY: guaranteed by the ChunkFn contract upheld in Batch::run.
        let f = unsafe { &*data.cast::<F>() };
        let out = results.cast::<MaybeUninit<R>>();
        for i in start..end {
            let value = f(i);
            // SAFETY: slot `i` lies in this call's exclusive range.
            unsafe { (*out.add(i)).write(value) };
        }
    }

    let batch = Arc::new(Batch {
        data: std::ptr::from_ref(&f).cast(),
        results: results.as_mut_ptr().cast(),
        call: chunk_shim::<R, F>,
        n,
        chunk: chunk.max(1),
        next: AtomicUsize::new(0),
        completed: AtomicUsize::new(0),
        panic: Mutex::new(None),
        done_lock: Mutex::new(()),
        done: Condvar::new(),
    });

    // Enqueue helper jobs (the caller is the remaining participant).
    let n_chunks = n.div_ceil(chunk.max(1));
    let helpers = (t - 1).min(n_chunks.saturating_sub(1));
    if helpers > 0 {
        pool.ensure_workers(helpers);
        {
            let mut q = pool.queue.lock().unwrap_or_else(|e| e.into_inner());
            for _ in 0..helpers {
                q.push_back(Arc::clone(&batch));
            }
        }
        // Wake exactly one parked worker per queued job — `notify_all`
        // would stampede every worker in the pool through the queue lock
        // even when only a couple of helper slots exist.
        for _ in 0..helpers {
            pool.job_ready.notify_one();
        }
    }

    // The caller drains chunks like any worker — this is what makes nested
    // batches deadlock-free: progress never depends on queue service.
    let chunks = batch.run();
    if chunks > 0 {
        pool.tasks.add(chunks);
    }

    // Wait for chunks claimed (and still running) on workers.
    {
        let mut guard = batch.done_lock.lock().unwrap_or_else(|e| e.into_inner());
        while batch.completed.load(Ordering::Acquire) < n {
            guard = batch.done.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }

    let payload = batch.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
    if let Some(payload) = payload {
        // Initialized result slots are leaked deliberately: `MaybeUninit`
        // never drops, and the panic path must not read half-built output.
        resume_unwind(payload);
    }

    // SAFETY: `completed == n` with no panic means every slot was written
    // exactly once; `MaybeUninit<R>` has `R`'s layout, so the buffer can be
    // reinterpreted in place.
    unsafe {
        let mut raw = ManuallyDrop::new(results);
        Vec::from_raw_parts(raw.as_mut_ptr().cast::<R>(), n, raw.capacity())
    }
}

/// Maps `f` over `items` by index (`f(i, &items[i])`).
pub fn par_map_slice<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map(items.len(), |i| f(i, &items[i]))
}

/// [`par_map_slice`] with an explicit serial-fallback threshold (see
/// [`par_map_min`]).
pub fn par_map_slice_min<T, R, F>(items: &[T], serial_below: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_min(items.len(), serial_below, |i| f(i, &items[i]))
}

/// Maps `map` over `0..n` in parallel, then folds the results **in index
/// order on the calling thread** — the ordered `(value, index)` reduction
/// that keeps winner selection and floating-point accumulation
/// bit-identical at any thread count.
pub fn par_map_reduce<R, A, F, G>(n: usize, map: F, init: A, fold: G) -> A
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    G: FnMut(A, R) -> A,
{
    par_map(n, map).into_iter().fold(init, fold)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Forces the parallel code path regardless of the host's core count.
    fn forced(n_threads: usize, f: impl FnOnce()) {
        set_threads(n_threads);
        f();
        set_threads(0);
    }

    #[test]
    fn auto_chunk_is_sane() {
        assert_eq!(auto_chunk(1, 8), 1);
        assert_eq!(auto_chunk(7, 4), 1);
        // Below 64·t: ~2 chunks per participant.
        assert_eq!(auto_chunk(100, 4), 13);
        // At and above 64·t: ~4 chunks per participant.
        assert_eq!(auto_chunk(1000, 4), 62);
        assert_eq!(auto_chunk(10_000, 4), 625);
    }

    #[test]
    fn serial_cutoff_keeps_results_identical() {
        forced(4, || {
            for cutoff in [0, 1, 8, 1000] {
                let got: Vec<usize> = par_map_min(37, cutoff, |i| i * 7);
                assert_eq!(
                    got,
                    (0..37).map(|i| i * 7).collect::<Vec<_>>(),
                    "cutoff={cutoff}"
                );
            }
        });
    }

    #[test]
    fn inline_path_matches_parallel_path() {
        let serial: Vec<usize> = {
            set_threads(1);
            par_map(100, |i| i * i)
        };
        let parallel: Vec<usize> = {
            set_threads(4);
            par_map(100, |i| i * i)
        };
        set_threads(0);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn chunked_variant_matches() {
        forced(3, || {
            for chunk in [1, 2, 7, 100, 1000] {
                let got: Vec<usize> = par_map_chunked(53, chunk, |i| i + 1);
                assert_eq!(got, (1..=53).collect::<Vec<_>>(), "chunk={chunk}");
            }
        });
    }

    #[test]
    fn reduce_is_index_ordered() {
        // Collect indices in fold order: must be 0..n at any thread count.
        forced(8, || {
            let order = par_map_reduce(
                200,
                |i| i,
                Vec::new(),
                |mut acc, i| {
                    acc.push(i);
                    acc
                },
            );
            assert_eq!(order, (0..200).collect::<Vec<_>>());
        });
    }

    #[test]
    fn threads_env_floor_is_one() {
        assert!(threads() >= 1);
    }
}
