//! Integration tests for the segrout-par worker pool: panic propagation to
//! the caller, nested scopes, degenerate inputs, oversubscription (far more
//! tasks than workers), and counter-merge correctness under contention
//! (extending the atomicity pattern of `crates/obs/tests/obs.rs`).
//!
//! The thread-count override is process-global, so every test that changes
//! it holds `threads_lock()` — otherwise a concurrently running test could
//! flip the pool back to inline mode mid-batch. Results are identical
//! either way (that is the crate's contract); the lock keeps each test's
//! *scheduling* assumption (inline vs pooled) honest.

use segrout_par::{par_map, par_map_chunked, par_map_reduce, par_map_slice, set_threads};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

fn threads_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` with the override pinned to `n` threads, restoring the default
/// afterwards even if `f` panics.
fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = threads_lock();
    set_threads(n);
    let result = catch_unwind(AssertUnwindSafe(f));
    set_threads(0);
    match result {
        Ok(r) => r,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

// ---------- degenerate inputs ----------

#[test]
fn empty_input_yields_empty_vec() {
    let out: Vec<u32> = with_threads(8, || par_map(0, |_| unreachable!("no items")));
    assert!(out.is_empty());
}

#[test]
fn single_item_runs_inline() {
    let out = with_threads(8, || par_map(1, |i| i + 10));
    assert_eq!(out, vec![10]);
}

#[test]
fn empty_slice_map() {
    let items: [u8; 0] = [];
    let out: Vec<u8> = with_threads(4, || par_map_slice(&items, |_, &x| x));
    assert!(out.is_empty());
}

// ---------- correctness at scale ----------

#[test]
fn many_more_tasks_than_workers() {
    const N: usize = 10_000;
    let out = with_threads(4, || par_map(N, |i| i * 3));
    assert_eq!(out.len(), N);
    for (i, &v) in out.iter().enumerate() {
        assert_eq!(v, i * 3);
    }
}

#[test]
fn chunk_size_never_changes_results() {
    let reference: Vec<u64> = (0..257).map(|i| i * i).collect();
    for threads in [1, 2, 8] {
        for chunk in [1, 3, 64, 1_000] {
            let got = with_threads(threads, || par_map_chunked(257, chunk, |i| (i * i) as u64));
            assert_eq!(got, reference, "threads={threads} chunk={chunk}");
        }
    }
}

#[test]
fn reduce_folds_in_index_order_under_contention() {
    // The fold result depends on order (string concatenation); it must be
    // the serial order at any thread count.
    let expected: String = (0..100).map(|i| format!("{i},")).collect();
    for threads in [1, 2, 8] {
        let got = with_threads(threads, || {
            par_map_reduce(
                100,
                |i| format!("{i},"),
                String::new(),
                |mut acc, s| {
                    acc.push_str(&s);
                    acc
                },
            )
        });
        assert_eq!(got, expected, "threads={threads}");
    }
}

// ---------- nesting ----------

#[test]
fn nested_scopes_complete_without_deadlock() {
    // Outer batch of 8, each spawning an inner batch of 50 — with only 2
    // pool threads this deadlocks unless callers participate in their own
    // batches.
    let out = with_threads(2, || {
        par_map(8, |i| {
            let inner = par_map(50, move |j| i * 50 + j);
            inner.iter().sum::<usize>()
        })
    });
    for (i, &s) in out.iter().enumerate() {
        let expected: usize = (0..50).map(|j| i * 50 + j).sum();
        assert_eq!(s, expected, "outer item {i}");
    }
}

#[test]
fn deeply_nested_scopes() {
    let total = with_threads(4, || {
        par_map_reduce(
            4,
            |a| {
                par_map_reduce(
                    4,
                    move |b| par_map(4, move |c| a + b + c),
                    0,
                    |acc, v| acc + v.iter().sum::<usize>(),
                )
            },
            0,
            |acc, v| acc + v,
        )
    });
    let mut expected = 0;
    for a in 0..4 {
        for b in 0..4 {
            for c in 0..4 {
                expected += a + b + c;
            }
        }
    }
    assert_eq!(total, expected);
}

// ---------- panic propagation ----------

#[test]
fn panic_in_worker_reaches_the_caller() {
    let result = with_threads(4, || {
        catch_unwind(AssertUnwindSafe(|| {
            par_map(100, |i| {
                if i == 57 {
                    panic!("boom at {i}");
                }
                i
            })
        }))
    });
    let payload = result.expect_err("the panic must propagate");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("boom at 57"), "payload: {msg:?}");
}

#[test]
fn pool_survives_a_panicked_batch() {
    with_threads(4, || {
        let _ = catch_unwind(AssertUnwindSafe(|| {
            par_map(64, |i| {
                if i % 2 == 0 {
                    panic!("even panic");
                }
                i
            })
        }));
        // The next batch on the same pool must run normally.
        let out = par_map(64, |i| i + 1);
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    });
}

#[test]
fn inline_path_panics_too() {
    let result = with_threads(1, || {
        catch_unwind(AssertUnwindSafe(|| {
            par_map(3, |_| -> u8 { panic!("serial boom") })
        }))
    });
    assert!(result.is_err());
}

// ---------- counter merge under contention ----------

#[test]
fn per_worker_counting_merges_exactly() {
    // Each task bumps a shared atomic once; the merged total must be exact
    // regardless of how chunks were distributed over workers. This is the
    // pool-level analogue of obs's `counter_is_atomic_under_threads`.
    const N: usize = 50_000;
    let hits = AtomicU64::new(0);
    with_threads(8, || {
        par_map_chunked(N, 7, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        })
    });
    assert_eq!(hits.load(Ordering::Relaxed), N as u64);
}

#[test]
fn obs_counters_merge_across_batches() {
    // The pool flushes `par.tasks` once per batch participation; after two
    // forced-parallel batches the counter must have grown by at least the
    // number of chunks that exist (caller + workers merge into one global
    // counter without losing updates).
    // Hold the lock for the whole test so concurrently running tests cannot
    // run batches of their own between the two counter reads.
    let _guard = threads_lock();
    set_threads(4);
    let tasks = segrout_obs::counter("par.tasks");
    let batches = segrout_obs::counter("par.batches");
    let (t0, b0) = (tasks.get(), batches.get());
    let _ = par_map_chunked(100, 5, |i| i);
    let _ = par_map_chunked(100, 5, |i| i);
    set_threads(0);
    assert_eq!(batches.get() - b0, 2);
    // 100 items in chunks of 5 → exactly 20 chunks per batch.
    assert_eq!(tasks.get() - t0, 40);
}
