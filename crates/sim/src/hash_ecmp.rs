//! The hash-based ECMP stream simulator (see crate docs).

use segrout_core::rng::StdRng;
use segrout_core::{max_link_utilization, Network, NodeId, Router, TeError, WeightSetting};
use segrout_graph::{shortest_path_dag_masked, SpDag};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// One simulated flow: `rate` units from `src` to `dst`, carried by
/// `streams` parallel TCP streams, optionally via waypoints.
#[derive(Clone, Debug)]
pub struct SimFlow {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Total offered rate of the flow.
    pub rate: f64,
    /// Number of parallel streams the rate is divided into (nuttcp-style).
    pub streams: usize,
    /// Segment-routing waypoints, visited in order.
    pub waypoints: Vec<NodeId>,
}

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Seed for the per-run hash salt (each run re-hashes all streams, as
    /// re-established TCP connections draw new source ports).
    pub seed: u64,
    /// Relative amplitude of multiplicative load noise modelling control
    /// -plane chatter (the paper observed small deviations from NDP
    /// packets); 0 disables it.
    pub noise: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            noise: 0.015,
        }
    }
}

/// Result of one simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Measured per-link loads.
    pub loads: Vec<f64>,
    /// Measured maximum link utilization.
    pub mlu: f64,
}

/// A simulator bound to one network + weight setting.
pub struct HashEcmpSim<'n> {
    router: Router<'n>,
    net: &'n Network,
}

impl<'n> HashEcmpSim<'n> {
    /// Creates a simulator; shortest-path DAGs are shared with the exact
    /// ECMP engine, so simulated routes are always legal ECMP routes.
    pub fn new(net: &'n Network, weights: &WeightSetting) -> Self {
        Self {
            router: Router::new(net, weights),
            net,
        }
    }

    /// Runs one experiment with a set of failed links: the IGP reconverges
    /// (failed links are masked out of every shortest-path DAG, exactly as
    /// if deleted; segment routing follows the post-failure shortest paths
    /// between waypoints), then the streams are measured. A stream whose
    /// segment destination becomes unreachable is a hard error naming the
    /// severed `(src, dst)` segment.
    ///
    /// # Errors
    /// Fails when a failure disconnects a segment.
    pub fn run_with_failures(
        &self,
        flows: &[SimFlow],
        cfg: &SimConfig,
        failed: &[segrout_core::EdgeId],
    ) -> Result<SimReport, TeError> {
        if failed.is_empty() {
            return self.run(flows, cfg);
        }
        let mut disabled = vec![false; self.net.edge_count()];
        for e in failed {
            disabled[e.index()] = true;
        }
        self.run_masked(flows, cfg, &disabled)
    }

    /// Runs one experiment: all flows start, run to steady state, and the
    /// per-link loads are measured (run `runs` times with different seeds to
    /// reproduce the spread of paper Figure 7).
    ///
    /// # Errors
    /// Fails when a stream cannot reach (one of) its segment destinations.
    pub fn run(&self, flows: &[SimFlow], cfg: &SimConfig) -> Result<SimReport, TeError> {
        self.run_masked(flows, cfg, &[])
    }

    /// The shared run body: routes over the router's cached DAGs on the
    /// intact topology, or over masked DAGs (failed links excluded from the
    /// Dijkstra, not re-weighted) when `disabled` is non-empty. `cache`
    /// holds the per-destination masked DAGs for the run.
    fn run_masked(
        &self,
        flows: &[SimFlow],
        cfg: &SimConfig,
        disabled: &[bool],
    ) -> Result<SimReport, TeError> {
        let mut loads = vec![0.0; self.net.edge_count()];
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let salt: u64 = rng.gen();
        let mut cache: Vec<Option<Arc<SpDag>>> = vec![None; self.net.node_count()];

        for (fid, flow) in flows.iter().enumerate() {
            assert!(flow.streams >= 1, "flows need at least one stream");
            let per_stream = flow.rate / flow.streams as f64;
            for sid in 0..flow.streams {
                // Segment endpoints: src -> w1 -> ... -> dst.
                let mut cur = flow.src;
                for &seg_dst in flow.waypoints.iter().chain(std::iter::once(&flow.dst)) {
                    if seg_dst == cur {
                        continue;
                    }
                    let dag = self.dag_for(&mut cache, seg_dst, disabled);
                    self.route_stream(
                        &dag,
                        cur,
                        seg_dst,
                        per_stream,
                        hash3(salt, fid as u64, sid as u64),
                        &mut loads,
                    )?;
                    cur = seg_dst;
                }
            }
        }

        if cfg.noise > 0.0 {
            for l in loads.iter_mut() {
                // Mean-one multiplicative jitter.
                *l *= 1.0 + cfg.noise * (rng.gen::<f64>() * 2.0 - 1.0);
            }
        }
        let mlu = max_link_utilization(&loads, self.net.capacities());
        Ok(SimReport { loads, mlu })
    }

    /// Returns the routing DAG towards `dst`: the router's cached DAG on the
    /// intact topology, or a run-local masked DAG when links are disabled.
    fn dag_for(
        &self,
        cache: &mut [Option<Arc<SpDag>>],
        dst: NodeId,
        disabled: &[bool],
    ) -> Arc<SpDag> {
        if disabled.is_empty() {
            return self.router.dag(dst);
        }
        Arc::clone(cache[dst.index()].get_or_insert_with(|| {
            Arc::new(shortest_path_dag_masked(
                self.net.graph(),
                self.router.weights(),
                dst,
                disabled,
            ))
        }))
    }

    /// Walks one stream from `src` to `dst` over `dag`, hashing at every hop
    /// over the ECMP next-hop set (the Linux `fib_multipath_hash_policy=1`
    /// L4 hash keys on the 5-tuple, constant along the path — modelled by
    /// the stream key — and is implementation-salted per router — modelled
    /// by hashing in the node id).
    fn route_stream(
        &self,
        dag: &SpDag,
        src: NodeId,
        dst: NodeId,
        rate: f64,
        stream_key: u64,
        loads: &mut [f64],
    ) -> Result<(), TeError> {
        if !dag.reaches_target(src) {
            return Err(TeError::Unroutable { src, dst });
        }
        let g = self.net.graph();
        let mut v = src;
        while v != dst {
            let nexts = dag.dag_out(v);
            debug_assert!(!nexts.is_empty());
            let pick = if nexts.len() == 1 {
                0
            } else {
                (hash3(stream_key, v.0 as u64, dst.0 as u64) % nexts.len() as u64) as usize
            };
            let e = nexts[pick];
            loads[e.index()] += rate;
            v = g.dst(e);
        }
        Ok(())
    }
}

/// Deterministic 3-input hash.
fn hash3(a: u64, b: u64, c: u64) -> u64 {
    let mut h = DefaultHasher::new();
    (a, b, c).hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use segrout_core::{DemandList, WaypointSetting};
    use segrout_instances::instance1;

    fn no_noise() -> SimConfig {
        SimConfig {
            seed: 1,
            noise: 0.0,
        }
    }

    #[test]
    fn single_path_is_exact() {
        let mut b = Network::builder(3);
        b.link(NodeId(0), NodeId(1), 10.0);
        b.link(NodeId(1), NodeId(2), 10.0);
        let net = b.build().unwrap();
        let w = WeightSetting::unit(&net);
        let sim = HashEcmpSim::new(&net, &w);
        let flows = vec![SimFlow {
            src: NodeId(0),
            dst: NodeId(2),
            rate: 5.0,
            streams: 8,
            waypoints: vec![],
        }];
        let r = sim.run(&flows, &no_noise()).unwrap();
        assert!((r.loads[0] - 5.0).abs() < 1e-9);
        assert!((r.mlu - 0.5).abs() < 1e-9);
    }

    #[test]
    fn hash_split_is_uneven_with_few_streams() {
        // Two equal-cost paths, 4 streams: the binomial split rarely lands
        // exactly 2/2 for every seed; with many seeds we must observe at
        // least one uneven split and never a load outside [0, rate].
        let mut b = Network::builder(4);
        b.link(NodeId(0), NodeId(1), 1.0);
        b.link(NodeId(1), NodeId(3), 1.0);
        b.link(NodeId(0), NodeId(2), 1.0);
        b.link(NodeId(2), NodeId(3), 1.0);
        let net = b.build().unwrap();
        let w = WeightSetting::unit(&net);
        let sim = HashEcmpSim::new(&net, &w);
        let flows = vec![SimFlow {
            src: NodeId(0),
            dst: NodeId(3),
            rate: 1.0,
            streams: 4,
            waypoints: vec![],
        }];
        let mut saw_uneven = false;
        for seed in 0..20 {
            let r = sim.run(&flows, &SimConfig { seed, noise: 0.0 }).unwrap();
            let (a, b_) = (r.loads[0], r.loads[2]);
            assert!((a + b_ - 1.0).abs() < 1e-9, "flow conserved");
            if (a - b_).abs() > 1e-9 {
                saw_uneven = true;
            }
        }
        assert!(saw_uneven, "hash splitting should be imperfect");
    }

    #[test]
    fn many_streams_approach_fluid_split() {
        let mut b = Network::builder(4);
        b.link(NodeId(0), NodeId(1), 1.0);
        b.link(NodeId(1), NodeId(3), 1.0);
        b.link(NodeId(0), NodeId(2), 1.0);
        b.link(NodeId(2), NodeId(3), 1.0);
        let net = b.build().unwrap();
        let w = WeightSetting::unit(&net);
        let sim = HashEcmpSim::new(&net, &w);
        let flows = vec![SimFlow {
            src: NodeId(0),
            dst: NodeId(3),
            rate: 1.0,
            streams: 20_000,
            waypoints: vec![],
        }];
        let r = sim.run(&flows, &no_noise()).unwrap();
        assert!((r.loads[0] - 0.5).abs() < 0.02, "law of large numbers");
    }

    #[test]
    fn waypoints_pin_streams_deterministically() {
        // Figure 7's joint configuration: each demand pinned through its own
        // waypoint gives MLU exactly 1 regardless of hashing.
        let inst = instance1(4);
        let sim = HashEcmpSim::new(&inst.network, &inst.joint_weights);
        let flows: Vec<SimFlow> = (0..4)
            .map(|i| SimFlow {
                src: inst.source,
                dst: inst.target,
                rate: 1.0,
                streams: 32,
                waypoints: inst.joint_waypoints.get(i).to_vec(),
            })
            .collect();
        let r = sim.run(&flows, &no_noise()).unwrap();
        assert!(
            (r.mlu - 1.0).abs() < 1e-9,
            "joint pinning is exact: {}",
            r.mlu
        );
    }

    #[test]
    fn weights_only_overloads_like_figure7() {
        // LWO-optimal weights on Instance 1: the fluid MLU is m/2 = 2; hash
        // splitting keeps it >= 2 (any imbalance only hurts the thin link or
        // leaves it at 2).
        let inst = instance1(4);
        let w = segrout_instances::instance1::lwo_optimal_weights(&inst);
        let sim = HashEcmpSim::new(&inst.network, &w);
        let flows: Vec<SimFlow> = (0..4)
            .map(|_| SimFlow {
                src: inst.source,
                dst: inst.target,
                rate: 1.0,
                streams: 32,
                waypoints: vec![],
            })
            .collect();
        for seed in 0..10 {
            let r = sim.run(&flows, &SimConfig { seed, noise: 0.0 }).unwrap();
            assert!(r.mlu >= 2.0 - 0.6, "seed {seed}: mlu = {}", r.mlu);
            assert!(r.mlu <= 4.0 + 1e-9);
        }
    }

    #[test]
    fn sim_agrees_with_fluid_engine_on_unsplit_routes() {
        // When every ECMP set is a singleton the simulator must match the
        // exact engine bit for bit.
        let inst = instance1(5);
        let router = Router::new(&inst.network, &inst.joint_weights);
        let mut demands = DemandList::new();
        for _ in 0..5 {
            demands.push(inst.source, inst.target, 1.0);
        }
        let mut wp = WaypointSetting::none(5);
        for i in 0..5 {
            wp.set(i, inst.joint_waypoints.get(i).to_vec());
        }
        let exact = router.evaluate(&demands, &wp).unwrap();
        let sim = HashEcmpSim::new(&inst.network, &inst.joint_weights);
        let flows: Vec<SimFlow> = (0..5)
            .map(|i| SimFlow {
                src: inst.source,
                dst: inst.target,
                rate: 1.0,
                streams: 32,
                waypoints: inst.joint_waypoints.get(i).to_vec(),
            })
            .collect();
        let simulated = sim.run(&flows, &no_noise()).unwrap();
        for e in 0..inst.network.edge_count() {
            assert!(
                (exact.loads[e] - simulated.loads[e]).abs() < 1e-9,
                "edge {e}: {} vs {}",
                exact.loads[e],
                simulated.loads[e]
            );
        }
    }

    #[test]
    fn noise_perturbs_but_preserves_scale() {
        let mut b = Network::builder(2);
        b.link(NodeId(0), NodeId(1), 1.0);
        let net = b.build().unwrap();
        let w = WeightSetting::unit(&net);
        let sim = HashEcmpSim::new(&net, &w);
        let flows = vec![SimFlow {
            src: NodeId(0),
            dst: NodeId(1),
            rate: 1.0,
            streams: 1,
            waypoints: vec![],
        }];
        let r = sim
            .run(
                &flows,
                &SimConfig {
                    seed: 3,
                    noise: 0.05,
                },
            )
            .unwrap();
        assert!(r.mlu > 0.9 && r.mlu < 1.1);
        assert!((r.mlu - 1.0).abs() > 1e-12, "noise should perturb");
    }
    #[test]
    fn failure_reroutes_around_dead_link() {
        // Diamond: fail the upper path's first link; everything reroutes
        // through the lower path.
        let mut b = Network::builder(4);
        b.link(NodeId(0), NodeId(1), 1.0); // e0 (will fail)
        b.link(NodeId(1), NodeId(3), 1.0);
        b.link(NodeId(0), NodeId(2), 1.0);
        b.link(NodeId(2), NodeId(3), 1.0);
        let net = b.build().unwrap();
        let w = WeightSetting::unit(&net);
        let sim = HashEcmpSim::new(&net, &w);
        let flows = vec![SimFlow {
            src: NodeId(0),
            dst: NodeId(3),
            rate: 1.0,
            streams: 16,
            waypoints: vec![],
        }];
        let r = sim
            .run_with_failures(&flows, &no_noise(), &[segrout_core::EdgeId(0)])
            .unwrap();
        assert_eq!(r.loads[0], 0.0);
        assert!((r.loads[2] - 1.0).abs() < 1e-9);
    }

    /// Figure 7's split-imperfection behaviour: on a two-way ECMP split the
    /// measured deviation from the fluid 50/50 shrinks as the stream count
    /// grows (binomial concentration), converging to the even split.
    #[test]
    fn split_imperfection_decays_with_stream_count() {
        let mut b = Network::builder(4);
        b.link(NodeId(0), NodeId(1), 1.0);
        b.link(NodeId(1), NodeId(3), 1.0);
        b.link(NodeId(0), NodeId(2), 1.0);
        b.link(NodeId(2), NodeId(3), 1.0);
        let net = b.build().unwrap();
        let w = WeightSetting::unit(&net);
        let sim = HashEcmpSim::new(&net, &w);

        let seeds: Vec<u64> = (0..8).collect();
        let mut mean_dev = Vec::new();
        for streams in [4usize, 16, 64, 256, 1024, 8192] {
            let flows = vec![SimFlow {
                src: NodeId(0),
                dst: NodeId(3),
                rate: 1.0,
                streams,
                waypoints: vec![],
            }];
            let dev: f64 = seeds
                .iter()
                .map(|&seed| {
                    let r = sim.run(&flows, &SimConfig { seed, noise: 0.0 }).unwrap();
                    (r.loads[0] - 0.5).abs()
                })
                .sum::<f64>()
                / seeds.len() as f64;
            mean_dev.push(dev);
        }
        // Convergence end-to-end: the coarsest split deviates visibly, the
        // finest is near-fluid, and the trend over a 2048x stream increase
        // is decisively downward (allowing small non-monotone steps).
        let first = mean_dev[0];
        let last = *mean_dev.last().unwrap();
        assert!(last < 0.02, "8192 streams still {last:.4} from even split");
        assert!(last < first / 4.0, "deviation did not decay: {mean_dev:?}");
        for w in mean_dev.windows(3) {
            assert!(
                w[2] < w[0].max(0.03),
                "no convergence trend in {mean_dev:?}"
            );
        }
    }

    #[test]
    fn failure_disconnecting_a_segment_errors() {
        let mut b = Network::builder(3);
        b.link(NodeId(0), NodeId(1), 1.0);
        b.link(NodeId(1), NodeId(2), 1.0);
        let net = b.build().unwrap();
        let w = WeightSetting::unit(&net);
        let sim = HashEcmpSim::new(&net, &w);
        let flows = vec![SimFlow {
            src: NodeId(0),
            dst: NodeId(2),
            rate: 1.0,
            streams: 4,
            waypoints: vec![],
        }];
        assert!(sim
            .run_with_failures(&flows, &no_noise(), &[segrout_core::EdgeId(1)])
            .is_err());
    }

    #[test]
    fn failure_run_matches_deleted_topology_bitwise() {
        // Masked routing must be indistinguishable from simulating on a
        // network rebuilt without the failed links: same hash picks, same
        // loads bit for bit (modulo the edge-id shift from deletion).
        let mut b = Network::builder(5);
        b.link(NodeId(0), NodeId(1), 1.0); // e0 (fails)
        b.link(NodeId(1), NodeId(4), 1.0); // e1
        b.link(NodeId(0), NodeId(2), 1.0); // e2
        b.link(NodeId(2), NodeId(4), 1.0); // e3
        b.link(NodeId(0), NodeId(3), 1.0); // e4
        b.link(NodeId(3), NodeId(4), 1.0); // e5 (fails)
        let net = b.build().unwrap();
        let w = WeightSetting::unit(&net);
        let sim = HashEcmpSim::new(&net, &w);
        let flows = vec![SimFlow {
            src: NodeId(0),
            dst: NodeId(4),
            rate: 3.0,
            streams: 16,
            waypoints: vec![],
        }];
        let masked = sim
            .run_with_failures(
                &flows,
                &no_noise(),
                &[segrout_core::EdgeId(0), segrout_core::EdgeId(5)],
            )
            .unwrap();

        let mut b2 = Network::builder(5);
        b2.link(NodeId(1), NodeId(4), 1.0);
        b2.link(NodeId(0), NodeId(2), 1.0);
        b2.link(NodeId(2), NodeId(4), 1.0);
        b2.link(NodeId(0), NodeId(3), 1.0);
        let net2 = b2.build().unwrap();
        let w2 = WeightSetting::unit(&net2);
        let sim2 = HashEcmpSim::new(&net2, &w2);
        let deleted = sim2.run(&flows, &no_noise()).unwrap();

        // Surviving edges e1..e4 of `net` map to e0..e3 of `net2`.
        for (old, new) in [(1usize, 0usize), (2, 1), (3, 2), (4, 3)] {
            assert_eq!(
                masked.loads[old].to_bits(),
                deleted.loads[new].to_bits(),
                "edge {old}: {} vs {}",
                masked.loads[old],
                deleted.loads[new]
            );
        }
        assert_eq!(masked.loads[0], 0.0, "failed link carries nothing");
        assert_eq!(masked.loads[5], 0.0, "failed link carries nothing");
        assert_eq!(masked.mlu.to_bits(), deleted.mlu.to_bits());
    }

    #[test]
    fn empty_failure_set_matches_plain_run() {
        let inst = instance1(4);
        let sim = HashEcmpSim::new(&inst.network, &inst.joint_weights);
        let flows = vec![SimFlow {
            src: inst.source,
            dst: inst.target,
            rate: 1.0,
            streams: 8,
            waypoints: vec![],
        }];
        let a = sim.run(&flows, &no_noise()).unwrap();
        let b = sim.run_with_failures(&flows, &no_noise(), &[]).unwrap();
        assert_eq!(a.loads, b.loads);
    }
}
