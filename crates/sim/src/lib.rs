//! # segrout-sim
//!
//! A flow-level simulator of *hash-based* ECMP splitting — the substitute
//! for the paper's Nanonet (Linux-netns) experiment in §7.2.
//!
//! Real routers do not split packets fluidly: each TCP stream is pinned to
//! one equal-cost next hop by a per-router L4 hash of its 5-tuple. With few
//! streams the split is uneven, which is exactly the phenomenon Figure 7
//! measures: the weight-only configuration shows MLUs well above the fluid
//! value 2 (hash imbalance across the two equal-cost routes), while the
//! joint configuration pins every flow through a waypoint to a single
//! deterministic route and lands on MLU ≈ 1.
//!
//! The simulator routes each *stream* (a demand is `streams` parallel
//! streams, as nuttcp's 32 parallel TCP connections) hop by hop: at every
//! node the next hop is chosen from the shortest-path next-hop set by a
//! deterministic per-(stream, node) hash. Segment routing is honoured by
//! routing each stream segment by segment through its waypoints. Optional
//! multiplicative noise models background chatter (NDP etc.).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hash_ecmp;

pub use hash_ecmp::{HashEcmpSim, SimConfig, SimFlow, SimReport};
