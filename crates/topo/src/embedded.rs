//! Embedded evaluation topologies.
//!
//! [`abilene`] is the real SNDLib Abilene backbone (12 nodes, 15 undirected
//! links, OC-192 trunks plus the thin ATLAM5 tail). The remaining networks
//! are *size-matched stand-ins*: deterministically seeded random connected
//! topologies with the published node/link counts and SNDLib-style tiered
//! capacities — the offline substitution documented in DESIGN.md. Real
//! SNDLib/TopologyZoo files can be loaded with [`crate::parsers`] instead.

use crate::synthetic::geo_backbone;
use segrout_core::{Network, NodeId};

/// The Abilene (Internet2) backbone as published in SNDLib: 12 PoPs,
/// 15 undirected links. Capacities in Mbit/s: 9920 (OC-192) everywhere
/// except the 2480 ATLAM5–ATLAng tail.
pub fn abilene() -> Network {
    const NAMES: [&str; 12] = [
        "ATLAM5", "ATLAng", "CHINng", "DNVRng", "HSTNng", "IPLSng", "KSCYng", "LOSAng", "NYCMng",
        "SNVAng", "STTLng", "WASHng",
    ];
    // (u, v, capacity): the 15 SNDLib links.
    const LINKS: [(usize, usize, f64); 15] = [
        (0, 1, 2480.0),  // ATLAM5 - ATLAng
        (1, 4, 9920.0),  // ATLAng - HSTNng
        (1, 5, 9920.0),  // ATLAng - IPLSng
        (1, 11, 9920.0), // ATLAng - WASHng
        (2, 5, 9920.0),  // CHINng - IPLSng
        (2, 8, 9920.0),  // CHINng - NYCMng
        (3, 6, 9920.0),  // DNVRng - KSCYng
        (3, 9, 9920.0),  // DNVRng - SNVAng
        (3, 10, 9920.0), // DNVRng - STTLng
        (4, 6, 9920.0),  // HSTNng - KSCYng
        (4, 7, 9920.0),  // HSTNng - LOSAng
        (5, 6, 9920.0),  // IPLSng - KSCYng
        (7, 9, 9920.0),  // LOSAng - SNVAng
        (8, 11, 9920.0), // NYCMng - WASHng
        (9, 10, 9920.0), // SNVAng - STTLng
    ];
    let mut b = Network::builder(12);
    for &(u, v, c) in &LINKS {
        b.bilink(NodeId(u as u32), NodeId(v as u32), c);
    }
    b.build()
        .expect("valid construction")
        .with_names(NAMES.iter().map(|s| s.to_string()).collect())
        .expect("12 names for 12 nodes")
}

/// `(name, nodes, undirected links, seed)` for each size-matched stand-in.
/// Node/link counts follow the published SNDLib / TopologyZoo figures.
const STAND_INS: [(&str, usize, usize, u64); 12] = [
    ("Geant", 22, 36, 1001),
    ("Germany50", 50, 88, 1002),
    ("Cost266", 37, 57, 1003),
    ("Giul39", 39, 86, 1004),
    ("Janos-US-CA", 39, 61, 1005),
    ("Myren", 37, 39, 1006),
    ("Pioro40", 40, 89, 1007),
    ("Renater2010", 43, 56, 1008),
    ("SwitchL3", 42, 63, 1009),
    ("Ta2", 65, 108, 1010),
    ("Zib54", 54, 81, 1011),
    ("Norway", 27, 51, 1012),
];

/// All embedded topology names, Abilene first.
pub const TOPOLOGY_NAMES: [&str; 13] = [
    "Abilene",
    "Geant",
    "Germany50",
    "Cost266",
    "Giul39",
    "Janos-US-CA",
    "Myren",
    "Pioro40",
    "Renater2010",
    "SwitchL3",
    "Ta2",
    "Zib54",
    "Norway",
];

/// Looks up an embedded topology by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<Network> {
    if name.eq_ignore_ascii_case("abilene") {
        return Some(abilene());
    }
    STAND_INS
        .iter()
        .find(|(n, _, _, _)| n.eq_ignore_ascii_case(name))
        .map(|&(_, nodes, links, seed)| geo_backbone(nodes, links, seed))
}

/// The ten largest capacitated non-tree topologies of the paper's Figure 4.
pub fn fig4_topologies() -> Vec<(&'static str, Network)> {
    [
        "Cost266",
        "Germany50",
        "Giul39",
        "Janos-US-CA",
        "Myren",
        "Pioro40",
        "Renater2010",
        "SwitchL3",
        "Ta2",
        "Zib54",
    ]
    .iter()
    .map(|&n| (n, by_name(n).expect("embedded")))
    .collect()
}

/// The three SNDLib topologies with real demand matrices used in Figure 6.
pub fn fig6_topologies() -> Vec<(&'static str, Network)> {
    ["Abilene", "Germany50", "Geant"]
        .iter()
        .map(|&n| (n, by_name(n).expect("embedded")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use segrout_graph::traversal::is_strongly_connected;

    #[test]
    fn abilene_shape() {
        let net = abilene();
        assert_eq!(net.node_count(), 12);
        assert_eq!(net.edge_count(), 30);
        assert!(is_strongly_connected(net.graph()));
        // One thin tail pair, 28 OC-192 channels.
        let thin = net.capacities().iter().filter(|&&c| c == 2480.0).count();
        assert_eq!(thin, 2);
        assert_eq!(net.node_by_name("NYCMng"), Some(NodeId(8)));
    }

    #[test]
    fn every_name_resolves() {
        for name in TOPOLOGY_NAMES {
            let net = by_name(name).unwrap_or_else(|| panic!("{name} missing"));
            assert!(is_strongly_connected(net.graph()), "{name} disconnected");
        }
        assert!(by_name("NoSuchNet").is_none());
    }

    #[test]
    fn stand_in_sizes_match_published_figures() {
        let g50 = by_name("Germany50").unwrap();
        assert_eq!(g50.node_count(), 50);
        assert_eq!(g50.edge_count(), 176);
        let ta2 = by_name("Ta2").unwrap();
        assert_eq!(ta2.node_count(), 65);
        assert_eq!(ta2.edge_count(), 216);
    }

    #[test]
    fn fig4_has_ten_topologies() {
        let v = fig4_topologies();
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn stand_ins_are_deterministic() {
        let a = by_name("Geant").unwrap();
        let b = by_name("Geant").unwrap();
        assert_eq!(a.capacities(), b.capacities());
    }
}
