//! # segrout-topo
//!
//! The topology suite for the paper's empirical evaluation (§7):
//!
//! * [`embedded`] — built-in backbones: the real Abilene topology (SNDLib
//!   structure and capacities) plus size-matched stand-ins for Géant,
//!   Germany50 and the ten largest capacitated TopologyZoo/SNDLib networks
//!   used in Figure 4. The stand-ins are deterministically generated with
//!   the published node/link counts and tiered link capacities (see
//!   DESIGN.md §3 for the substitution rationale),
//! * [`parsers`] — minimal SNDLib-XML and GraphML readers so the real data
//!   files drop in when available,
//! * [`synthetic`] — random connected / Waxman / grid / ring generators for
//!   controlled experiments and property tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod embedded;
pub mod parsers;
pub mod stats;
pub mod synthetic;

pub use embedded::{abilene, by_name, fig4_topologies, fig6_topologies, TOPOLOGY_NAMES};
pub use parsers::{parse_graphml, parse_sndlib_xml};
pub use stats::{topology_stats, TopologyStats};
pub use synthetic::{geo_backbone, grid, random_connected, ring, waxman};
