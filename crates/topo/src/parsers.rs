//! Minimal readers for the two file formats of the paper's data sources:
//! SNDLib's native XML and TopologyZoo's GraphML.
//!
//! These are deliberately small, dependency-free scanners (not validating
//! XML parsers): they extract node ids, link endpoints, link capacities and
//! (for SNDLib) demand matrices from well-formed files, which is exactly
//! what the evaluation pipeline needs. Undirected links become bi-directed
//! link pairs, following the convention used throughout this workspace.

use segrout_core::{DemandList, Network, TeError};
use std::collections::HashMap;

/// Extracts the inner text of the first `<tag>…</tag>` inside `s`.
fn inner_text<'a>(s: &'a str, tag: &str) -> Option<&'a str> {
    let open = format!("<{tag}>");
    let close = format!("</{tag}>");
    let start = s.find(&open)? + open.len();
    let end = s[start..].find(&close)? + start;
    Some(s[start..end].trim())
}

/// Iterates over the blocks `<tag …>…</tag>` (or self-closing `<tag …/>`)
/// in `s`, yielding `(attributes_str, inner)`.
fn blocks<'a>(s: &'a str, tag: &str) -> Vec<(&'a str, &'a str)> {
    let mut out = Vec::new();
    let open_prefix = format!("<{tag}");
    let close = format!("</{tag}>");
    let mut rest = s;
    while let Some(pos) = rest.find(&open_prefix) {
        let after = &rest[pos + open_prefix.len()..];
        // Must be followed by whitespace, '>' or '/' (avoid matching
        // <linkXYZ> when scanning for <link>).
        match after.chars().next() {
            Some(c) if c == ' ' || c == '>' || c == '/' || c == '\t' || c == '\n' => {}
            _ => {
                rest = &rest[pos + open_prefix.len()..];
                continue;
            }
        }
        let Some(tag_end) = after.find('>') else {
            break;
        };
        let attrs = &after[..tag_end];
        if let Some(stripped) = attrs.strip_suffix('/') {
            out.push((stripped.trim(), ""));
            rest = &after[tag_end + 1..];
            continue;
        }
        let body_start = tag_end + 1;
        let Some(close_pos) = after[body_start..].find(&close) else {
            break;
        };
        out.push((attrs.trim(), &after[body_start..body_start + close_pos]));
        rest = &after[body_start + close_pos + close.len()..];
    }
    out
}

/// Extracts the value of `name="…"` from an attribute string.
fn attr<'a>(attrs: &'a str, name: &str) -> Option<&'a str> {
    let pat = format!("{name}=\"");
    let start = attrs.find(&pat)? + pat.len();
    let end = attrs[start..].find('"')? + start;
    Some(&attrs[start..end])
}

/// Parses an SNDLib native-XML file: nodes, undirected links with
/// pre-installed capacities, and (when present) the demand matrix.
///
/// # Errors
/// Returns [`TeError::InvalidWaypoints`] wrapping a message when structure
/// is missing (no nodes/links), and capacity errors from network validation.
pub fn parse_sndlib_xml(xml: &str) -> Result<(Network, Option<DemandList>), TeError> {
    let mut names: Vec<String> = Vec::new();
    let mut index: HashMap<String, u32> = HashMap::new();
    for (attrs, _) in blocks(xml, "node") {
        if let Some(id) = attr(attrs, "id") {
            index.insert(id.to_string(), names.len() as u32);
            names.push(id.to_string());
        }
    }
    if names.is_empty() {
        return Err(TeError::InvalidWaypoints("SNDLib file has no nodes".into()));
    }
    let mut b = Network::builder(names.len());
    let mut any_link = false;
    for (_, body) in blocks(xml, "link") {
        let (Some(src), Some(dst)) = (inner_text(body, "source"), inner_text(body, "target"))
        else {
            continue;
        };
        let capacity = inner_text(body, "capacity")
            .and_then(|c| c.parse::<f64>().ok())
            .unwrap_or(1.0);
        let (Some(&u), Some(&v)) = (index.get(src), index.get(dst)) else {
            return Err(TeError::InvalidWaypoints(format!(
                "link references unknown node {src} or {dst}"
            )));
        };
        b.bilink(segrout_core::NodeId(u), segrout_core::NodeId(v), capacity);
        any_link = true;
    }
    if !any_link {
        return Err(TeError::InvalidWaypoints("SNDLib file has no links".into()));
    }
    let net = b.build()?.with_names(names)?;

    // Demands (optional).
    let mut demands = DemandList::new();
    for (_, body) in blocks(xml, "demand") {
        let (Some(src), Some(dst), Some(val)) = (
            inner_text(body, "source"),
            inner_text(body, "target"),
            inner_text(body, "demandValue"),
        ) else {
            continue;
        };
        let (Some(&u), Some(&v)) = (index.get(src), index.get(dst)) else {
            continue;
        };
        if let Ok(size) = val.parse::<f64>() {
            if size > 0.0 && u != v {
                demands.push(segrout_core::NodeId(u), segrout_core::NodeId(v), size);
            }
        }
    }
    Ok((net, (!demands.is_empty()).then_some(demands)))
}

/// Parses a TopologyZoo GraphML file. Link capacities are taken from the
/// edge data key whose `attr.name` is `LinkSpeedRaw` (bits/s, converted to
/// Mbit/s); edges without one get `default_capacity_mbps`.
///
/// # Errors
/// Structure errors are reported as [`TeError::InvalidWaypoints`] messages.
pub fn parse_graphml(xml: &str, default_capacity_mbps: f64) -> Result<Network, TeError> {
    // Which key id carries LinkSpeedRaw?
    let mut speed_key: Option<String> = None;
    for (attrs, _) in blocks(xml, "key") {
        if attr(attrs, "attr.name") == Some("LinkSpeedRaw") && attr(attrs, "for") == Some("edge") {
            speed_key = attr(attrs, "id").map(str::to_string);
        }
    }
    let mut names: Vec<String> = Vec::new();
    let mut index: HashMap<String, u32> = HashMap::new();
    for (attrs, _) in blocks(xml, "node") {
        if let Some(id) = attr(attrs, "id") {
            index.insert(id.to_string(), names.len() as u32);
            names.push(id.to_string());
        }
    }
    if names.is_empty() {
        return Err(TeError::InvalidWaypoints(
            "GraphML file has no nodes".into(),
        ));
    }
    let mut b = Network::builder(names.len());
    let mut any = false;
    for (attrs, body) in blocks(xml, "edge") {
        let (Some(src), Some(dst)) = (attr(attrs, "source"), attr(attrs, "target")) else {
            continue;
        };
        let mut capacity = default_capacity_mbps;
        if let Some(key) = &speed_key {
            for (dattrs, dbody) in blocks(body, "data") {
                if attr(dattrs, "key") == Some(key.as_str()) {
                    if let Ok(bits) = dbody.trim().parse::<f64>() {
                        if bits > 0.0 {
                            capacity = bits / 1e6;
                        }
                    }
                }
            }
        }
        let (Some(&u), Some(&v)) = (index.get(src), index.get(dst)) else {
            return Err(TeError::InvalidWaypoints(format!(
                "edge references unknown node {src} or {dst}"
            )));
        };
        if u == v {
            continue; // TopologyZoo occasionally carries self-loop artifacts
        }
        b.bilink(segrout_core::NodeId(u), segrout_core::NodeId(v), capacity);
        any = true;
    }
    if !any {
        return Err(TeError::InvalidWaypoints(
            "GraphML file has no edges".into(),
        ));
    }
    b.build()?.with_names(names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use segrout_core::NodeId;

    const SNDLIB_SAMPLE: &str = r#"<?xml version="1.0"?>
<network xmlns="http://sndlib.zib.de/network" version="1.0">
  <networkStructure>
    <nodes coordinatesType="geographical">
      <node id="Wien"><coordinates><x>16.37</x><y>48.21</y></coordinates></node>
      <node id="Graz"><coordinates><x>15.44</x><y>47.07</y></coordinates></node>
      <node id="Linz"><coordinates><x>14.29</x><y>48.31</y></coordinates></node>
    </nodes>
    <links>
      <link id="L1"><source>Wien</source><target>Graz</target>
        <preInstalledModule><capacity>40.0</capacity><cost>1.0</cost></preInstalledModule>
      </link>
      <link id="L2"><source>Graz</source><target>Linz</target>
        <preInstalledModule><capacity>10.0</capacity><cost>1.0</cost></preInstalledModule>
      </link>
    </links>
  </networkStructure>
  <demands>
    <demand id="D1"><source>Wien</source><target>Linz</target><demandValue>7.5</demandValue></demand>
  </demands>
</network>"#;

    #[test]
    fn sndlib_round_trip() {
        let (net, demands) = parse_sndlib_xml(SNDLIB_SAMPLE).unwrap();
        assert_eq!(net.node_count(), 3);
        assert_eq!(net.edge_count(), 4); // 2 undirected -> 4 directed
        assert_eq!(net.node_by_name("Wien"), Some(NodeId(0)));
        assert_eq!(net.capacities()[0], 40.0);
        let d = demands.unwrap();
        assert_eq!(d.len(), 1);
        assert!((d[0].size - 7.5).abs() < 1e-12);
        assert_eq!(d[0].src, NodeId(0));
        assert_eq!(d[0].dst, NodeId(2));
    }

    const GRAPHML_SAMPLE: &str = r#"<?xml version="1.0"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key attr.name="LinkSpeedRaw" attr.type="double" for="edge" id="d32"/>
  <key attr.name="label" attr.type="string" for="node" id="d33"/>
  <graph edgedefault="undirected">
    <node id="n0"><data key="d33">Seattle</data></node>
    <node id="n1"><data key="d33">Denver</data></node>
    <node id="n2"><data key="d33">Houston</data></node>
    <edge source="n0" target="n1"><data key="d32">10000000000</data></edge>
    <edge source="n1" target="n2"></edge>
  </graph>
</graphml>"#;

    #[test]
    fn graphml_round_trip() {
        let net = parse_graphml(GRAPHML_SAMPLE, 1000.0).unwrap();
        assert_eq!(net.node_count(), 3);
        assert_eq!(net.edge_count(), 4);
        assert_eq!(net.capacities()[0], 10_000.0); // 10 Gbit/s -> Mbit/s
        assert_eq!(net.capacities()[2], 1000.0); // default
    }

    #[test]
    fn rejects_empty_documents() {
        assert!(parse_sndlib_xml("<network></network>").is_err());
        assert!(parse_graphml("<graphml></graphml>", 1.0).is_err());
    }

    #[test]
    fn rejects_dangling_link() {
        let bad = r#"<nodes><node id="A"/></nodes>
            <link id="L"><source>A</source><target>B</target></link>"#;
        assert!(parse_sndlib_xml(bad).is_err());
    }

    #[test]
    fn block_scanner_handles_self_closing() {
        let s = r#"<node id="x"/><node id="y"></node>"#;
        assert_eq!(blocks(s, "node").len(), 2);
    }

    #[test]
    fn block_scanner_ignores_prefix_collisions() {
        let s = r#"<linkSpeed>9</linkSpeed><link id="a"><source>s</source></link>"#;
        assert_eq!(blocks(s, "link").len(), 1);
    }

    /// Truncating well-formed documents at every byte boundary must produce
    /// a clean `Result` — the scanners may reject the partial input but
    /// never panic or hang.
    #[test]
    fn truncated_documents_never_panic() {
        for sample in [SNDLIB_SAMPLE, GRAPHML_SAMPLE] {
            for cut in (0..sample.len()).step_by(7) {
                let Some(prefix) = sample.get(..cut) else {
                    continue; // mid-codepoint cut; byte slicing would panic
                };
                let _ = parse_sndlib_xml(prefix);
                let _ = parse_graphml(prefix, 1000.0);
            }
        }
    }

    /// Feeding each parser the *other* format (and assorted junk) returns
    /// errors, not panics.
    #[test]
    fn malformed_documents_are_rejected() {
        for junk in [
            "",
            "not xml at all",
            "<network><nodes></nodes></network>",
            "<graphml><graph></graph></graphml>",
            // Nodes but no links.
            r#"<nodes><node id="A"/><node id="B"/></nodes>"#,
            // Unclosed link block after valid nodes.
            r#"<node id="A"/><node id="B"/><link id="L"><source>A</source>"#,
        ] {
            assert!(parse_sndlib_xml(junk).is_err(), "sndlib accepted {junk:?}");
            assert!(
                parse_graphml(junk, 1.0).is_err(),
                "graphml accepted {junk:?}"
            );
        }
        // Cross-format confusion: GraphML fed to the SNDLib parser finds
        // nodes but no <link> blocks.
        assert!(parse_sndlib_xml(GRAPHML_SAMPLE).is_err());
    }

    /// GraphML edges referencing unknown nodes are structural errors.
    #[test]
    fn graphml_rejects_dangling_edge() {
        let bad = r#"<graphml><graph>
            <node id="n0"/><edge source="n0" target="n9"/>
        </graph></graphml>"#;
        assert!(parse_graphml(bad, 1.0).is_err());
    }

    /// A non-numeric capacity falls back to the documented defaults instead
    /// of failing the parse.
    #[test]
    fn unparsable_capacities_fall_back_to_defaults() {
        let snd = r#"<node id="A"/><node id="B"/>
            <link id="L"><source>A</source><target>B</target>
              <capacity>fast</capacity></link>"#;
        let (net, _) = parse_sndlib_xml(snd).unwrap();
        assert_eq!(net.capacities(), &[1.0, 1.0]);

        let gml = r#"<graphml>
            <key attr.name="LinkSpeedRaw" for="edge" id="k"/>
            <node id="a"/><node id="b"/>
            <edge source="a" target="b"><data key="k">broken</data></edge>
        </graphml>"#;
        let net = parse_graphml(gml, 777.0).unwrap();
        assert_eq!(net.capacities(), &[777.0, 777.0]);
    }

    /// Every embedded topology survives the full stats pipeline with sane
    /// values — the parse -> model -> stats round trip the CLI exercises.
    #[test]
    fn embedded_topologies_round_trip_through_stats() {
        for name in crate::TOPOLOGY_NAMES {
            let net = crate::by_name(name).unwrap_or_else(|| panic!("missing {name}"));
            let stats = crate::topology_stats(&net);
            assert!(net.node_count() >= 2, "{name}");
            assert!(net.edge_count() >= 2, "{name}");
            assert!(stats.min_capacity > 0.0, "{name}");
            assert!(stats.max_capacity >= stats.min_capacity, "{name}");
            assert!(stats.capacity_spread >= 1.0, "{name}");
            assert!(!stats.capacity_tiers.is_empty(), "{name}");
        }
    }
}
