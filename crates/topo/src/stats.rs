//! Topology statistics: the structural fingerprint used to compare
//! stand-ins against the published properties of the real networks.

use segrout_core::Network;
use segrout_graph::metrics::{metrics, GraphMetrics};

/// Structural and capacity statistics of a network.
#[derive(Clone, Debug)]
pub struct TopologyStats {
    /// Graph-structural metrics (degrees, diameter, SCCs).
    pub graph: GraphMetrics,
    /// Smallest link capacity.
    pub min_capacity: f64,
    /// Largest link capacity.
    pub max_capacity: f64,
    /// Capacity spread `max / min`.
    pub capacity_spread: f64,
    /// Distinct capacity values (the "tiers").
    pub capacity_tiers: Vec<f64>,
}

/// Computes [`TopologyStats`] for a network.
///
/// # Panics
/// Panics on an edgeless network (no capacities to summarize).
pub fn topology_stats(net: &Network) -> TopologyStats {
    assert!(net.edge_count() > 0, "network has no links");
    let min = net
        .capacities()
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let max = net.capacities().iter().cloned().fold(0.0f64, f64::max);
    let mut tiers: Vec<f64> = net.capacities().to_vec();
    tiers.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    tiers.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    TopologyStats {
        graph: metrics(net.graph()),
        min_capacity: min,
        max_capacity: max,
        capacity_spread: max / min,
        capacity_tiers: tiers,
    }
}

impl std::fmt::Display for TopologyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} nodes, {} directed links (out-degree {}..{}, avg {:.1})",
            self.graph.nodes,
            self.graph.edges,
            self.graph.min_out_degree,
            self.graph.max_out_degree,
            self.graph.avg_out_degree
        )?;
        match self.graph.diameter {
            Some(d) => writeln!(f, "strongly connected, hop diameter {d}")?,
            None => writeln!(f, "NOT strongly connected ({} SCCs)", self.graph.scc_count)?,
        }
        writeln!(
            f,
            "capacities: {:.0} .. {:.0} Mbit/s (spread {:.0}x, {} tiers)",
            self.min_capacity,
            self.max_capacity,
            self.capacity_spread,
            self.capacity_tiers.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedded::abilene;
    use crate::synthetic::geo_backbone;

    #[test]
    fn abilene_stats() {
        let s = topology_stats(&abilene());
        assert_eq!(s.graph.nodes, 12);
        assert_eq!(s.graph.edges, 30);
        assert_eq!(s.graph.scc_count, 1);
        assert_eq!(s.capacity_tiers.len(), 2); // 2480 + 9920
        assert!((s.capacity_spread - 4.0).abs() < 1e-9);
        assert!(s.graph.diameter.unwrap() >= 3);
    }

    #[test]
    fn geo_backbone_stats_are_ring_like() {
        let s = topology_stats(&geo_backbone(30, 48, 3));
        assert_eq!(s.graph.scc_count, 1);
        assert!(
            s.graph.min_out_degree >= 2,
            "ring skeleton guarantees degree 2"
        );
        assert!(s.capacity_spread > 100.0, "wide tier mix");
    }

    #[test]
    fn display_is_informative() {
        let text = topology_stats(&abilene()).to_string();
        assert!(text.contains("12 nodes"));
        assert!(text.contains("strongly connected"));
        assert!(text.contains("spread"));
    }

    #[test]
    #[should_panic(expected = "no links")]
    fn empty_network_panics() {
        let net = Network::new(segrout_graph::Digraph::new(2), vec![]).unwrap();
        topology_stats(&net);
    }
}
