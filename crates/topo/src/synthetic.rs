//! Synthetic topology generators.
//!
//! All generators produce *strongly connected* networks with bi-directed
//! links (the ISP convention: one fiber, two directed channels of equal
//! capacity), deterministic in the seed.

use segrout_core::rng::{SliceRandom, StdRng};
use segrout_core::{Network, NodeId};
use segrout_graph::traversal::is_strongly_connected;
use std::collections::HashSet;

/// Capacity tiers used when a generator needs heterogeneous link rates:
/// 2.5G / 10G / 40G (in Mbit/s), roughly the OC-48/OC-192/OTU3 mix of the
/// SNDLib backbones.
pub const CAPACITY_TIERS: [f64; 3] = [2_480.0, 9_920.0, 39_680.0];

/// Draws a capacity tier: mostly mid-tier with occasional thin and fat
/// links, echoing SNDLib's distribution.
fn draw_capacity(rng: &mut StdRng) -> f64 {
    let r: f64 = rng.gen();
    if r < 0.25 {
        CAPACITY_TIERS[0]
    } else if r < 0.85 {
        CAPACITY_TIERS[1]
    } else {
        CAPACITY_TIERS[2]
    }
}

/// A random connected network: a random spanning tree plus extra random
/// links until `undirected_links` are present, all bi-directed with tiered
/// capacities.
///
/// # Panics
/// Panics when `undirected_links < n - 1` (a spanning tree is impossible) or
/// exceeds the simple-graph maximum `n (n-1) / 2`.
pub fn random_connected(n: usize, undirected_links: usize, seed: u64) -> Network {
    assert!(n >= 2);
    assert!(undirected_links >= n - 1, "need at least a spanning tree");
    assert!(
        undirected_links <= n * (n - 1) / 2,
        "too many links for a simple graph"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Network::builder(n);
    let mut present: HashSet<(u32, u32)> = HashSet::new();

    // Random spanning tree: attach each node to a random earlier node.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut rng);
    for i in 1..n {
        let a = order[i];
        let bnode = order[rng.gen_range(0..i)];
        let key = (a.min(bnode), a.max(bnode));
        present.insert(key);
        b.bilink(NodeId(a), NodeId(bnode), draw_capacity(&mut rng));
    }
    // Extra links.
    while present.len() < undirected_links {
        let a = rng.gen_range(0..n as u32);
        let c = rng.gen_range(0..n as u32);
        if a == c {
            continue;
        }
        let key = (a.min(c), a.max(c));
        if present.insert(key) {
            b.bilink(NodeId(a), NodeId(c), draw_capacity(&mut rng));
        }
    }
    let net = b.build().expect("valid construction");
    debug_assert!(is_strongly_connected(net.graph()));
    net
}

/// A Waxman random graph on the unit square: nodes at random positions,
/// link probability `alpha * exp(-dist / (beta * L))`, patched up to
/// connectivity with a spanning tree. Capacities are tiered.
pub fn waxman(n: usize, alpha: f64, beta: f64, seed: u64) -> Network {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let pos: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
    let l = 2.0_f64.sqrt();
    let mut b = Network::builder(n);
    let mut present: HashSet<(u32, u32)> = HashSet::new();
    for i in 0..n {
        for j in i + 1..n {
            let d = ((pos[i].0 - pos[j].0).powi(2) + (pos[i].1 - pos[j].1).powi(2)).sqrt();
            let p = alpha * (-d / (beta * l)).exp();
            if rng.gen::<f64>() < p {
                present.insert((i as u32, j as u32));
                b.bilink(NodeId(i as u32), NodeId(j as u32), draw_capacity(&mut rng));
            }
        }
    }
    // Ensure connectivity with a random spanning tree over missing pairs.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut rng);
    for i in 1..n {
        let a = order[i];
        let c = order[rng.gen_range(0..i)];
        let key = (a.min(c), a.max(c));
        if present.insert(key) {
            b.bilink(NodeId(a), NodeId(c), draw_capacity(&mut rng));
        }
    }
    let net = b.build().expect("valid construction");
    debug_assert!(is_strongly_connected(net.graph()));
    net
}

/// A geographically embedded backbone: nodes on the unit square, connected
/// by a Euclidean minimum-spanning-tree-like skeleton plus the shortest
/// remaining candidate edges — the locality structure of real ISP
/// backbones (long chains, regional clusters, few long-haul shortcuts),
/// which is what makes their TE instances hard. Capacities are drawn from
/// a wide OC-12 … OTU3 tier mix *uncorrelated* with edge centrality,
/// mirroring the capacity/traffic mismatch in the SNDLib data.
///
/// # Panics
/// Panics under the same link-count constraints as [`random_connected`].
pub fn geo_backbone(n: usize, undirected_links: usize, seed: u64) -> Network {
    assert!(n >= 2);
    assert!(undirected_links >= n - 1, "need at least a spanning tree");
    assert!(
        undirected_links <= n * (n - 1) / 2,
        "too many links for a simple graph"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let pos: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
    let d2 = |a: usize, b: usize| (pos[a].0 - pos[b].0).powi(2) + (pos[a].1 - pos[b].1).powi(2);

    // Wide, skewed tier mix (E3 … OTU3, a ~1000x spread), assigned
    // *uncorrelated* with edge role — TopologyZoo link speeds span several
    // orders of magnitude within one network, and the mismatch between
    // capacity and centrality is precisely what standard weight settings
    // trip over in Figure 4.
    let draw_trunk = |rng: &mut StdRng| {
        let r: f64 = rng.gen();
        if r < 0.10 {
            34.0 // E3
        } else if r < 0.30 {
            155.0 // OC-3
        } else if r < 0.55 {
            622.0 // OC-12
        } else if r < 0.75 {
            2_480.0 // OC-48
        } else if r < 0.95 {
            9_920.0 // OC-192
        } else {
            39_680.0 // OTU3
        }
    };
    let draw_regional = draw_trunk;

    let mut b = Network::builder(n);
    let mut present: HashSet<(u32, u32)> = HashSet::new();
    // Ring skeleton: an angular tour around the centroid. Real backbones
    // are 2-edge-connected (SDH/ring heritage); a tree skeleton would put
    // the MCF bottleneck on a bridge, where *every* routing scheme is
    // equal and the TE instance degenerates.
    let cx: f64 = pos.iter().map(|p| p.0).sum::<f64>() / n as f64;
    let cy: f64 = pos.iter().map(|p| p.1).sum::<f64>() / n as f64;
    let mut tour: Vec<usize> = (0..n).collect();
    tour.sort_by(|&a, &c| {
        let aa = (pos[a].1 - cy).atan2(pos[a].0 - cx);
        let ac = (pos[c].1 - cy).atan2(pos[c].0 - cx);
        aa.partial_cmp(&ac).unwrap_or(std::cmp::Ordering::Equal)
    });
    for i in 0..n {
        let a = tour[i];
        let c = tour[(i + 1) % n];
        let key = (a.min(c) as u32, a.max(c) as u32);
        if present.insert(key) {
            b.bilink(NodeId(a as u32), NodeId(c as u32), draw_trunk(&mut rng));
        }
    }
    // Augment with the geographically shortest remaining pairs (slightly
    // jittered so different seeds produce different shortcut sets).
    let mut candidates: Vec<(f64, u32, u32)> = Vec::new();
    for a in 0..n as u32 {
        for c in a + 1..n as u32 {
            if !present.contains(&(a, c)) {
                let jitter = 1.0 + 0.35 * rng.gen::<f64>();
                candidates.push((d2(a as usize, c as usize) * jitter, a, c));
            }
        }
    }
    candidates.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap_or(std::cmp::Ordering::Equal));
    for &(_, a, c) in candidates.iter() {
        if present.len() >= undirected_links {
            break;
        }
        present.insert((a, c));
        b.bilink(NodeId(a), NodeId(c), draw_regional(&mut rng));
    }
    let net = b.build().expect("valid construction");
    debug_assert!(is_strongly_connected(net.graph()));
    net
}

/// A `w × h` grid with uniform capacities — handy for experiments isolating
/// topology shape from capacity heterogeneity.
pub fn grid(w: usize, h: usize, capacity: f64) -> Network {
    assert!(w >= 1 && h >= 1 && w * h >= 2);
    let id = |x: usize, y: usize| NodeId((y * w + x) as u32);
    let mut b = Network::builder(w * h);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.bilink(id(x, y), id(x + 1, y), capacity);
            }
            if y + 1 < h {
                b.bilink(id(x, y), id(x, y + 1), capacity);
            }
        }
    }
    b.build().expect("valid construction")
}

/// A bi-directed ring of `n` nodes with uniform capacities.
pub fn ring(n: usize, capacity: f64) -> Network {
    assert!(n >= 3);
    let mut b = Network::builder(n);
    for i in 0..n {
        b.bilink(NodeId(i as u32), NodeId(((i + 1) % n) as u32), capacity);
    }
    b.build().expect("valid construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_connected_is_strongly_connected() {
        for seed in 0..5 {
            let net = random_connected(20, 35, seed);
            assert!(is_strongly_connected(net.graph()));
            assert_eq!(net.edge_count(), 70); // bi-directed
            assert_eq!(net.node_count(), 20);
        }
    }

    #[test]
    fn random_connected_is_deterministic() {
        let a = random_connected(15, 25, 42);
        let b = random_connected(15, 25, 42);
        assert_eq!(a.capacities(), b.capacities());
        for (e, u, v) in a.graph().edges() {
            assert_eq!(b.graph().endpoints(e), (u, v));
        }
    }

    #[test]
    fn capacities_come_from_tiers() {
        let net = random_connected(10, 20, 7);
        for &c in net.capacities() {
            assert!(CAPACITY_TIERS.contains(&c));
        }
    }

    #[test]
    fn waxman_is_connected() {
        for seed in 0..3 {
            let net = waxman(25, 0.4, 0.3, seed);
            assert!(is_strongly_connected(net.graph()));
        }
    }

    #[test]
    fn grid_shape() {
        let net = grid(3, 2, 10.0);
        assert_eq!(net.node_count(), 6);
        // 3x2 grid: 2*2 horizontal + 3*1 vertical = 7 undirected links.
        assert_eq!(net.edge_count(), 14);
        assert!(net.has_uniform_capacities());
        assert!(is_strongly_connected(net.graph()));
    }

    #[test]
    fn ring_shape() {
        let net = ring(5, 1.0);
        assert_eq!(net.edge_count(), 10);
        assert!(is_strongly_connected(net.graph()));
    }

    #[test]
    #[should_panic(expected = "spanning tree")]
    fn too_few_links_rejected() {
        random_connected(10, 5, 0);
    }

    #[test]
    fn geo_backbone_is_strongly_connected() {
        for seed in 0..4 {
            let net = geo_backbone(30, 48, seed);
            assert!(is_strongly_connected(net.graph()));
            assert_eq!(net.node_count(), 30);
            assert_eq!(net.edge_count(), 96);
        }
    }

    #[test]
    fn geo_backbone_is_deterministic() {
        let a = geo_backbone(20, 32, 5);
        let b = geo_backbone(20, 32, 5);
        assert_eq!(a.capacities(), b.capacities());
    }

    #[test]
    fn geo_backbone_has_wide_capacity_spread() {
        let net = geo_backbone(40, 60, 9);
        let max = net.capacities().iter().cloned().fold(0.0f64, f64::max);
        let min = net
            .capacities()
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(max / min >= 15.0, "spread {}", max / min);
    }
}
