//! Demand generators (see crate docs).

use segrout_algos::max_concurrent_flow;
use segrout_core::rng::{SliceRandom, StdRng};
use segrout_core::{Demand, DemandList, DemandSet, Network, NodeId, TeError};

/// Shared knobs of the generators.
#[derive(Clone, Debug)]
pub struct TrafficConfig {
    /// RNG seed.
    pub seed: u64,
    /// Fraction of ordered node pairs that become active in
    /// [`mcf_synthetic`] (the paper uses 0.2).
    pub pair_fraction: f64,
    /// Number of equal sub-flows per active pair; `None` uses the paper's
    /// `|E| / 4` rule.
    pub flows_per_pair: Option<usize>,
    /// FPTAS accuracy for the MCF normalization.
    pub mcf_epsilon: f64,
    /// Log-normal σ of the per-pair base sizes in [`mcf_synthetic`]
    /// (0 = equal sizes). Real matrices are heavily skewed; equal sizes
    /// produce diffuse, almost fluid-like instances on which every weight
    /// setting is near-optimal.
    pub size_skew: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            pair_fraction: 0.2,
            flows_per_pair: None,
            mcf_epsilon: 0.08,
            size_skew: 1.5,
        }
    }
}

/// Draws a log-normal sample `exp(σ · N(0,1))` via Box–Muller.
fn lognormal(rng: &mut StdRng, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return 1.0;
    }
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (sigma * z).exp()
}

/// Scales every demand by a common factor such that the optimal
/// multi-commodity flow achieves MLU (approximately) 1 — the paper's
/// normalization making all reported MLUs comparable across topologies.
///
/// Returns the scaled list and the scale factor applied.
///
/// # Errors
/// Propagates [`TeError::Unroutable`] for disconnected pairs.
pub fn scale_to_unit_mlu(
    net: &Network,
    demands: &DemandList,
    epsilon: f64,
) -> Result<(DemandList, f64), TeError> {
    let mcf = max_concurrent_flow(net, demands, epsilon)?;
    let factor = mcf.lambda;
    let scaled: DemandList = demands
        .iter()
        .map(|d| Demand::new(d.src, d.dst, d.size * factor))
        .collect();
    Ok((scaled, factor))
}

/// Splits each demand into `k` equal sub-flows (the paper's fine-grained
/// flow model: `|E|/4` flows per pair).
fn split_flows(demands: &DemandList, k: usize) -> DemandList {
    assert!(k >= 1);
    let mut out = DemandList::new();
    for d in demands {
        let share = d.size / k as f64;
        for _ in 0..k {
            out.push(d.src, d.dst, share);
        }
    }
    out
}

/// The paper's "MCF Synthetic Demands": a random fraction of ordered pairs
/// (20% in the paper) with log-normal base sizes, scaled so the MCF optimum
/// has MLU 1, then split into `|E|/4` equal sub-flows per pair.
///
/// # Errors
/// Propagates routing errors from the MCF normalization.
pub fn mcf_synthetic(net: &Network, cfg: &TrafficConfig) -> Result<DemandList, TeError> {
    let n = net.node_count();
    assert!(n >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Pendant PoPs (out-degree 1, e.g. Abilene's ATLAM5 tail) are excluded
    // from pair selection: any demand touching one forces its bridge link
    // into every routing AND into the fluid optimum, so the MCF
    // normalization pins the instance at MLU exactly 1 for every algorithm
    // — a degenerate benchmark.
    let eligible: Vec<u32> = (0..n as u32)
        .filter(|&v| net.graph().out_degree(NodeId(v)) > 1)
        .collect();
    assert!(
        eligible.len() >= 2,
        "need at least two non-pendant nodes for demand generation"
    );
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
    for &u in &eligible {
        for &v in &eligible {
            if u != v {
                pairs.push((NodeId(u), NodeId(v)));
            }
        }
    }
    pairs.shuffle(&mut rng);
    let picked = ((pairs.len() as f64 * cfg.pair_fraction).round() as usize).max(1);
    let mut base = DemandList::new();
    for &(u, v) in pairs.iter().take(picked) {
        base.push(u, v, lognormal(&mut rng, cfg.size_skew));
    }

    let (scaled, _) = scale_to_unit_mlu(net, &base, cfg.mcf_epsilon)?;
    let k = cfg
        .flows_per_pair
        .unwrap_or_else(|| (net.edge_count() / 4).max(1));
    Ok(split_flows(&scaled, k))
}

/// Gravity-model demands standing in for SNDLib's real matrices: every
/// ordered pair is active with size proportional to the product of
/// log-normally distributed node masses (heavy skew), MCF-normalized.
///
/// Unlike [`mcf_synthetic`], pendant nodes are *not* excluded: the paper
/// states "all connection pairs are active" for the real matrices, and we
/// keep that property. Consequence: on topologies with a pendant PoP
/// (Abilene's ATLAM5) the bridge link can bind the normalization and
/// compress all algorithms toward MLU 1 — visible in the Figure 6 Abilene
/// row.
///
/// # Errors
/// Propagates routing errors from the MCF normalization.
pub fn gravity(net: &Network, cfg: &TrafficConfig) -> Result<DemandList, TeError> {
    let n = net.node_count();
    assert!(n >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Log-normal masses: exp(N(0, sigma)) with sigma chosen for the "huge
    // skew" the paper observes in the real matrices — several orders of
    // magnitude between light and heavy PoP pairs. (With mild skew the
    // MCF-normalized instances become fluid-like and every weight setting
    // is near-optimal, hiding the waypoint benefit Figure 6 demonstrates.)
    let sigma = 2.2;
    let masses: Vec<f64> = (0..n).map(|_| lognormal(&mut rng, sigma)).collect();

    let mut base = DemandList::new();
    for u in 0..n {
        for v in 0..n {
            if u != v {
                base.push(NodeId(u as u32), NodeId(v as u32), masses[u] * masses[v]);
            }
        }
    }
    let (scaled, _) = scale_to_unit_mlu(net, &base, cfg.mcf_epsilon)?;
    Ok(scaled)
}

/// A drifting sequence of demand matrices for re-optimization experiments
/// (the paper's §8 future-work scenario): starts from a gravity matrix and
/// multiplies every demand by a small log-normal factor each step,
/// renormalizing so the fluid optimum stays at MLU 1.
///
/// # Errors
/// Propagates routing errors from the normalizations.
pub fn drifting_series(
    net: &Network,
    cfg: &TrafficConfig,
    steps: usize,
    drift_sigma: f64,
) -> Result<Vec<DemandList>, TeError> {
    assert!(steps >= 1);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xd21f7);
    let mut series = Vec::with_capacity(steps);
    let mut cur = gravity(net, cfg)?;
    series.push(cur.clone());
    for _ in 1..steps {
        let drifted: DemandList = cur
            .iter()
            .map(|d| Demand::new(d.src, d.dst, d.size * lognormal(&mut rng, drift_sigma)))
            .collect();
        let (normalized, _) = scale_to_unit_mlu(net, &drifted, cfg.mcf_epsilon)?;
        series.push(normalized.clone());
        cur = normalized;
    }
    Ok(series)
}

/// A diurnal [`DemandSet`]: `steps` snapshots of a gravity base matrix where
/// every node follows its own day/night activity curve
/// `1 + amplitude · sin(2π(t/steps + φ_v))` with a random per-node phase
/// `φ_v`. A pair's demand at step `t` is the base size times the *product*
/// of its endpoints' activities, so matrices differ in **shape**, not just
/// scale — time zones shift load between regions, which is exactly the
/// regime where a robust configuration differs from any single-matrix
/// optimum.
///
/// Only the base matrix is MCF-normalized; per-step renormalization would
/// erase the inter-matrix variation the set exists to expose. All matrices
/// share the base's pair list (aligned by construction); names are
/// `t0, t1, ...`.
///
/// # Errors
/// Propagates routing errors from the base-matrix normalization.
///
/// # Panics
/// Panics when `steps == 0` or `amplitude` is outside `[0, 1)`.
pub fn diurnal_set(
    net: &Network,
    cfg: &TrafficConfig,
    steps: usize,
    amplitude: f64,
) -> Result<DemandSet, TeError> {
    assert!(steps >= 1);
    assert!(
        (0.0..1.0).contains(&amplitude),
        "activity must stay positive: amplitude in [0, 1)"
    );
    let base = gravity(net, cfg)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x00d1_44a1);
    let phases: Vec<f64> = (0..net.node_count()).map(|_| rng.gen::<f64>()).collect();
    let activity = |v: NodeId, t: usize| -> f64 {
        let x = t as f64 / steps as f64 + phases[v.index()];
        1.0 + amplitude * (2.0 * std::f64::consts::PI * x).sin()
    };
    let mut set = DemandSet::new();
    for t in 0..steps {
        let snapshot: DemandList = base
            .iter()
            .map(|d| {
                Demand::new(
                    d.src,
                    d.dst,
                    d.size * activity(d.src, t) * activity(d.dst, t),
                )
            })
            .collect();
        set.push(format!("t{t}"), snapshot);
    }
    Ok(set)
}

/// A perturbation [`DemandSet`]: `count` matrices, each the gravity base
/// with independent per-pair log-normal jitter `exp(σ·N(0,1))` — the
/// classic "demand uncertainty" model (an estimated matrix plus
/// multiplicative forecast error). All matrices share the base's pair list
/// (aligned); names are `p0, p1, ...`.
///
/// # Errors
/// Propagates routing errors from the base-matrix normalization.
///
/// # Panics
/// Panics when `count == 0` or `sigma` is negative.
pub fn gravity_perturbation_set(
    net: &Network,
    cfg: &TrafficConfig,
    count: usize,
    sigma: f64,
) -> Result<DemandSet, TeError> {
    assert!(count >= 1);
    assert!(sigma >= 0.0);
    let base = gravity(net, cfg)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9e37_79b9);
    let mut set = DemandSet::new();
    for j in 0..count {
        let jittered: DemandList = base
            .iter()
            .map(|d| Demand::new(d.src, d.dst, d.size * lognormal(&mut rng, sigma)))
            .collect();
        set.push(format!("p{j}"), jittered);
    }
    Ok(set)
}

/// [`drifting_series`] packaged as an aligned [`DemandSet`] (names
/// `t0, t1, ...`), for feeding the re-optimization series into the robust
/// optimizers.
///
/// # Errors
/// Propagates routing errors from the normalizations.
pub fn drifting_set(
    net: &Network,
    cfg: &TrafficConfig,
    steps: usize,
    drift_sigma: f64,
) -> Result<DemandSet, TeError> {
    Ok(DemandSet::from_series(drifting_series(
        net,
        cfg,
        steps,
        drift_sigma,
    )?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use segrout_topo::abilene;

    #[test]
    fn mcf_synthetic_hits_unit_mlu() {
        let net = abilene();
        let cfg = TrafficConfig::default();
        let d = mcf_synthetic(&net, &cfg).unwrap();
        let opt = max_concurrent_flow(&net, &d, 0.05).unwrap().opt_mlu;
        // Normalized instances have fluid optimum ~1 (FPTAS tolerance).
        assert!((opt - 1.0).abs() < 0.15, "opt = {opt}");
    }

    #[test]
    fn pair_fraction_is_respected() {
        let net = abilene();
        let cfg = TrafficConfig {
            flows_per_pair: Some(1),
            ..Default::default()
        };
        let d = mcf_synthetic(&net, &cfg).unwrap();
        // Abilene has one pendant PoP (ATLAM5), so 11 eligible nodes.
        let expected_pairs = ((11 * 10) as f64 * 0.2).round() as usize;
        assert_eq!(d.len(), expected_pairs);
    }

    #[test]
    fn flows_per_pair_rule() {
        let net = abilene(); // |E| = 30 -> 7 flows per pair
        let d = mcf_synthetic(&net, &TrafficConfig::default()).unwrap();
        let expected_pairs = ((11 * 10) as f64 * 0.2).round() as usize;
        assert_eq!(d.len(), expected_pairs * (30 / 4));
    }

    #[test]
    fn sub_flows_have_equal_sizes() {
        let net = abilene();
        let d = mcf_synthetic(&net, &TrafficConfig::default()).unwrap();
        // Demands of the same pair must be equal-sized.
        for w in d.as_slice().windows(2) {
            if w[0].src == w[1].src && w[0].dst == w[1].dst {
                assert!((w[0].size - w[1].size).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gravity_covers_all_pairs_with_skew() {
        let net = abilene();
        let d = gravity(&net, &TrafficConfig::default()).unwrap();
        assert_eq!(d.len(), 12 * 11);
        let mut sizes: Vec<f64> = d.iter().map(|x| x.size).collect();
        sizes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let skew = sizes[sizes.len() - 1] / sizes[0];
        assert!(
            skew > 50.0,
            "gravity matrix should be heavily skewed: {skew}"
        );
    }

    #[test]
    fn generators_are_deterministic() {
        let net = abilene();
        let cfg = TrafficConfig::default();
        let a = mcf_synthetic(&net, &cfg).unwrap();
        let b = mcf_synthetic(&net, &cfg).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.src, y.src);
            assert_eq!(x.dst, y.dst);
            assert!((x.size - y.size).abs() < 1e-12);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let net = abilene();
        let a = mcf_synthetic(&net, &TrafficConfig::default()).unwrap();
        let b = mcf_synthetic(
            &net,
            &TrafficConfig {
                seed: 99,
                ..Default::default()
            },
        )
        .unwrap();
        let same = a
            .iter()
            .zip(b.iter())
            .all(|(x, y)| x.src == y.src && x.dst == y.dst);
        assert!(!same, "different seeds should select different pairs");
    }

    #[test]
    fn scale_to_unit_mlu_scales_linearly() {
        let net = abilene();
        let mut d = DemandList::new();
        d.push(NodeId(0), NodeId(7), 1.0);
        d.push(NodeId(8), NodeId(10), 2.0);
        let (scaled, factor) = scale_to_unit_mlu(&net, &d, 0.05).unwrap();
        assert!((scaled[0].size - factor).abs() < 1e-9);
        assert!((scaled[1].size - 2.0 * factor).abs() < 1e-9);
        // Size ratio is preserved.
        assert!((scaled[1].size / scaled[0].size - 2.0).abs() < 1e-9);
    }
    /// The generators' determinism contract: the same seed yields
    /// bit-identical matrices regardless of the worker-thread count (the
    /// MCF normalization runs through the parallel evaluator paths).
    #[test]
    fn same_seed_is_bit_identical_across_thread_counts() {
        let net = abilene();
        let cfg = TrafficConfig {
            seed: 77,
            ..Default::default()
        };
        let prev = segrout_par::threads();
        let mut per_threads = Vec::new();
        for t in [1usize, 4] {
            segrout_par::set_threads(t);
            let mcf = mcf_synthetic(&net, &cfg).unwrap();
            let grav = gravity(&net, &cfg).unwrap();
            per_threads.push((mcf, grav));
        }
        segrout_par::set_threads(prev);
        let (mcf1, grav1) = &per_threads[0];
        let (mcf4, grav4) = &per_threads[1];
        assert_eq!(mcf1.len(), mcf4.len());
        for (a, b) in mcf1.iter().zip(mcf4.iter()) {
            assert_eq!(a.src, b.src);
            assert_eq!(a.dst, b.dst);
            assert_eq!(a.size.to_bits(), b.size.to_bits(), "mcf sizes diverge");
        }
        assert_eq!(grav1.len(), grav4.len());
        for (a, b) in grav1.iter().zip(grav4.iter()) {
            assert_eq!(a.size.to_bits(), b.size.to_bits(), "gravity sizes diverge");
        }
    }

    /// Gravity matrices follow the product form `d_ij ∝ m_i · m_j`: the
    /// matrix is exactly symmetric, and cross-ratios `d_ij·d_kl = d_il·d_kj`
    /// hold — the mass-conservation structure of the model.
    #[test]
    fn gravity_product_form_holds() {
        let net = abilene();
        let d = gravity(
            &net,
            &TrafficConfig {
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let n = net.node_count();
        assert_eq!(d.len(), n * (n - 1), "gravity covers every ordered pair");
        let mut matrix = vec![vec![0.0f64; n]; n];
        for dem in d.iter() {
            matrix[dem.src.index()][dem.dst.index()] = dem.size;
        }
        // Symmetry is bit-exact: d_ij and d_ji come from the same product.
        for (i, row) in matrix.iter().enumerate() {
            for (j, &val) in row.iter().enumerate() {
                assert_eq!(
                    val.to_bits(),
                    matrix[j][i].to_bits(),
                    "asymmetry at ({i}, {j})"
                );
            }
        }
        // Cross-ratio identity on a sample of index quadruples.
        for (i, j, k, l) in [(0, 1, 2, 3), (4, 7, 1, 9), (2, 5, 8, 0)] {
            let lhs = matrix[i][j] * matrix[k][l];
            let rhs = matrix[i][l] * matrix[k][j];
            assert!(
                (lhs - rhs).abs() <= 1e-9 * lhs.abs().max(rhs.abs()),
                "cross-ratio broken for ({i},{j},{k},{l}): {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn diurnal_set_is_aligned_and_shapes_differ() {
        let net = abilene();
        let set = diurnal_set(&net, &TrafficConfig::default(), 4, 0.6).unwrap();
        assert_eq!(set.len(), 4);
        assert!(set.is_aligned());
        assert_eq!(set.name(0), "t0");
        // Shape (not just scale) must vary: the ratio of two pairs' sizes
        // differs across snapshots because per-node phases differ.
        let r = |k: usize| set.matrix(k)[0].size / set.matrix(k)[1].size;
        let varies = (1..4).any(|k| (r(k) - r(0)).abs() > 1e-6);
        assert!(varies, "diurnal snapshots differ only by a common scale");
        // Determinism.
        let again = diurnal_set(&net, &TrafficConfig::default(), 4, 0.6).unwrap();
        for k in 0..4 {
            for (a, b) in set.matrix(k).iter().zip(again.matrix(k).iter()) {
                assert_eq!(a.size.to_bits(), b.size.to_bits());
            }
        }
    }

    #[test]
    fn perturbation_set_is_aligned_and_jittered() {
        let net = abilene();
        let set = gravity_perturbation_set(&net, &TrafficConfig::default(), 3, 0.4).unwrap();
        assert_eq!(set.len(), 3);
        assert!(set.is_aligned());
        let moved = set
            .matrix(0)
            .iter()
            .zip(set.matrix(1).iter())
            .any(|(a, b)| (a.size - b.size).abs() > 1e-9);
        assert!(moved, "perturbations must differ across matrices");
    }

    #[test]
    fn drifting_set_matches_series() {
        let net = abilene();
        let cfg = TrafficConfig::default();
        let series = drifting_series(&net, &cfg, 3, 0.3).unwrap();
        let set = drifting_set(&net, &cfg, 3, 0.3).unwrap();
        assert_eq!(set.len(), 3);
        assert!(set.is_aligned());
        for (k, d) in series.iter().enumerate() {
            for (a, b) in d.iter().zip(set.matrix(k).iter()) {
                assert_eq!(a.size.to_bits(), b.size.to_bits());
            }
        }
    }

    #[test]
    fn drifting_series_stays_normalized() {
        let net = abilene();
        let series = drifting_series(&net, &TrafficConfig::default(), 4, 0.3).unwrap();
        assert_eq!(series.len(), 4);
        for d in &series {
            let opt = max_concurrent_flow(&net, d, 0.05).unwrap().opt_mlu;
            assert!((opt - 1.0).abs() < 0.2, "step optimum {opt}");
        }
        // Consecutive matrices differ but share the pair structure.
        assert_eq!(series[0].len(), series[1].len());
        let moved = series[0]
            .iter()
            .zip(series[1].iter())
            .any(|(a, b)| (a.size - b.size).abs() > 1e-9);
        assert!(moved, "drift must change sizes");
    }
}
