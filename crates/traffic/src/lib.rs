//! # segrout-traffic
//!
//! Demand-matrix generation for the paper's evaluation (§7):
//!
//! * [`mcf_synthetic`] — the paper's "MCF Synthetic" method: pick 20% of
//!   ordered node pairs at random, scale their (initially equal) demands so
//!   the maximal concurrent multi-commodity flow achieves MLU exactly 1, and
//!   split every pair's demand into `|E|/4` equal sub-flows,
//! * [`gravity`] — skewed full-mesh matrices standing in for SNDLib's real
//!   traffic (all pairs active, heavy log-normal skew — the two properties
//!   the paper highlights), also MCF-normalized,
//! * [`scale_to_unit_mlu`] — the shared normalization step, so "MLU = 2"
//!   always means *twice the fluid optimum* regardless of topology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;

pub use generators::{
    diurnal_set, drifting_series, drifting_set, gravity, gravity_perturbation_set, mcf_synthetic,
    scale_to_unit_mlu, TrafficConfig,
};
