//! Demonstrates why fluid ECMP numbers are optimistic: real routers pin
//! each TCP stream to one next hop by hash, and with few streams the split
//! is uneven. Segment routing sidesteps the problem by pinning flows to
//! engineered routes (the paper's Nanonet experiment, §7.2).
//!
//! ```sh
//! cargo run --example hash_ecmp_sim
//! ```

use segrout_instances::{instance1, instance1::lwo_optimal_weights};
use segrout_sim::{HashEcmpSim, SimConfig, SimFlow};

fn main() {
    let inst = instance1(4);
    println!("TE-Instance 1 (m = 4): 4 unit flows, 32 TCP streams each\n");

    // Weights-only: fluid MLU would be exactly 2.0 (even split over two
    // equal-cost routes). Hashed streams land unevenly.
    let w = lwo_optimal_weights(&inst);
    let sim = HashEcmpSim::new(&inst.network, &w);
    let flows: Vec<SimFlow> = (0..4)
        .map(|_| SimFlow {
            src: inst.source,
            dst: inst.target,
            rate: 1.0,
            streams: 32,
            waypoints: vec![],
        })
        .collect();
    println!("weights-only (fluid MLU = 2.0):");
    for seed in 0..5 {
        let r = sim
            .run(&flows, &SimConfig { seed, noise: 0.01 })
            .expect("routes");
        println!("  run {seed}: measured MLU = {:.4}", r.mlu);
    }

    // Joint: each flow pinned through its own waypoint; hashing is
    // irrelevant because every ECMP set is a singleton.
    let joint_sim = HashEcmpSim::new(&inst.network, &inst.joint_weights);
    let joint_flows: Vec<SimFlow> = (0..4)
        .map(|i| SimFlow {
            src: inst.source,
            dst: inst.target,
            rate: 1.0,
            streams: 32,
            waypoints: inst.joint_waypoints.get(i).to_vec(),
        })
        .collect();
    println!("\njoint weights + waypoints (fluid MLU = 1.0):");
    for seed in 0..5 {
        let r = joint_sim
            .run(&joint_flows, &SimConfig { seed, noise: 0.01 })
            .expect("routes");
        println!("  run {seed}: measured MLU = {:.4}", r.mlu);
    }
    println!("\nThe weights-only MLU scatters above 2.0; the joint MLU stays at 1.0");
    println!("(plus noise) — the shape of the paper's Figure 7.");
}
