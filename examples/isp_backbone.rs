//! A realistic ISP workflow on the Abilene backbone: generate an
//! MCF-normalized traffic matrix, compare the standard weight settings with
//! the paper's optimizers, and inspect which demands received waypoints.
//!
//! ```sh
//! cargo run --release --example isp_backbone
//! ```

use segrout_algos::{joint_heur, max_concurrent_flow, JointHeurConfig};
use segrout_core::{Router, WaypointSetting, WeightSetting};
use segrout_topo::abilene;
use segrout_traffic::{mcf_synthetic, TrafficConfig};

fn main() {
    let net = abilene();
    println!(
        "Abilene: {} PoPs, {} directed links",
        net.node_count(),
        net.edge_count()
    );

    // Traffic matrix scaled so the fluid optimum is MLU 1 (the paper's
    // normalization): every MLU below reads as "x above optimal".
    let demands = mcf_synthetic(
        &net,
        &TrafficConfig {
            seed: 2026,
            ..Default::default()
        },
    )
    .expect("abilene is connected");
    println!(
        "traffic: {} flows, total {:.1} Mbit/s",
        demands.len(),
        demands.total_size()
    );
    let opt = max_concurrent_flow(&net, &demands, 0.05)
        .expect("connected")
        .opt_mlu;
    println!("fluid optimum (MCF):        MLU = {opt:.3}");

    // Standard settings.
    for (name, w) in [
        ("unit weights", WeightSetting::unit(&net)),
        ("inverse capacity", WeightSetting::inverse_capacity(&net)),
    ] {
        let mlu = Router::new(&net, &w)
            .evaluate(&demands, &WaypointSetting::none(demands.len()))
            .expect("connected")
            .mlu;
        println!("{name:<27} MLU = {mlu:.3}");
    }

    // The joint optimizer.
    let result = joint_heur(&net, &demands, &JointHeurConfig::default()).expect("connected");
    println!(
        "HeurOSPF (weights only)     MLU = {:.3}",
        result.mlu_weights_only
    );
    println!("JOINT-Heur (joint)          MLU = {:.3}", result.mlu);

    // How many demands actually needed segment routing?
    let with_wp = (0..demands.len())
        .filter(|&i| !result.waypoints.get(i).is_empty())
        .count();
    println!(
        "\n{} of {} flows were assigned a waypoint; examples:",
        with_wp,
        demands.len()
    );
    let mut shown = 0;
    for i in 0..demands.len() {
        let wps = result.waypoints.get(i);
        if !wps.is_empty() && shown < 5 {
            let d = demands[i];
            println!(
                "  {:>7.1} Mbit/s  {} -> {}  via  {}",
                d.size,
                net.node_name(d.src),
                net.node_name(d.dst),
                net.node_name(wps[0]),
            );
            shown += 1;
        }
    }
}
