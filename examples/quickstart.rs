//! Quickstart: build a network, declare demands, and jointly optimize link
//! weights and segment-routing waypoints.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use segrout_algos::{joint_heur, JointHeurConfig};
use segrout_core::{DemandList, Network, NodeId, Router, WaypointSetting, WeightSetting};

fn main() {
    // A small ISP-like network: a fast ring with one thin shortcut.
    //
    //      0 ──40── 1
    //      │╲       │
    //     40 2.5   40
    //      │    ╲   │
    //      3 ──40── 2
    let mut b = Network::builder(4);
    b.bilink(NodeId(0), NodeId(1), 40.0);
    b.bilink(NodeId(1), NodeId(2), 40.0);
    b.bilink(NodeId(2), NodeId(3), 40.0);
    b.bilink(NodeId(3), NodeId(0), 40.0);
    b.bilink(NodeId(0), NodeId(2), 2.5); // thin diagonal
    let net = b.build().expect("valid network");

    // Two demands that both want the diagonal under naive weights.
    let mut demands = DemandList::new();
    demands.push(NodeId(0), NodeId(2), 30.0);
    demands.push(NodeId(1), NodeId(3), 10.0);

    // Baseline: unit weights. The 0 -> 2 demand takes the thin diagonal.
    let unit = WeightSetting::unit(&net);
    let router = Router::new(&net, &unit);
    let baseline = router
        .evaluate(&demands, &WaypointSetting::none(demands.len()))
        .expect("connected");
    println!("unit weights:              MLU = {:.3}", baseline.mlu);

    // Joint optimization: HeurOSPF weights + greedy waypoints.
    let result = joint_heur(&net, &demands, &JointHeurConfig::default()).expect("connected");
    println!(
        "JOINT-Heur (weights only): MLU = {:.3}",
        result.mlu_weights_only
    );
    println!("JOINT-Heur (joint):        MLU = {:.3}", result.mlu);

    // Inspect the configuration the optimizer chose.
    println!("\nchosen link weights:");
    for (e, u, v) in net.graph().edges() {
        println!(
            "  {} -> {}: w = {:>2}  (capacity {})",
            u,
            v,
            result.weights.get(e),
            net.capacity(e)
        );
    }
    for i in 0..demands.len() {
        let wps = result.waypoints.get(i);
        if wps.is_empty() {
            println!("demand {i}: routed directly");
        } else {
            println!("demand {i}: via waypoint(s) {:?}", wps);
        }
    }

    assert!(result.mlu <= baseline.mlu + 1e-9);
}
