//! Reacting to a traffic shift without rewriting the whole IGP: the
//! reconfiguration-aware re-optimization extension (paper §8 future work).
//!
//! ```sh
//! cargo run --release --example reoptimization
//! ```

use segrout::algos::{
    heur_ospf, reoptimize_joint, reoptimize_unconstrained, reoptimize_weights, HeurOspfConfig,
    ReoptimizeConfig,
};
use segrout::core::Router;
use segrout::topo::abilene;
use segrout::traffic::{drifting_series, TrafficConfig};

fn main() {
    let net = abilene();
    // Two snapshots of a drifting gravity matrix.
    let series = drifting_series(
        &net,
        &TrafficConfig {
            seed: 42,
            ..Default::default()
        },
        2,
        0.6,
    )
    .expect("abilene is connected");
    let (yesterday, today) = (&series[0], &series[1]);

    // The deployed configuration was tuned for yesterday's traffic.
    let ospf = HeurOspfConfig {
        seed: 1,
        ..Default::default()
    };
    let deployed = heur_ospf(&net, yesterday, &ospf);
    println!(
        "deployed weights on yesterday's matrix: MLU = {:.3}",
        Router::new(&net, &deployed).mlu(yesterday).expect("routes")
    );
    println!(
        "same weights on today's matrix:         MLU = {:.3}  <- the drift penalty",
        Router::new(&net, &deployed).mlu(today).expect("routes")
    );

    // How much does each reaction cost/recover?
    println!("\nreaction options for today's traffic:");
    for budget in [0usize, 1, 3] {
        let cfg = ReoptimizeConfig {
            max_weight_changes: budget,
            ospf: ospf.clone(),
            ..Default::default()
        };
        let w = reoptimize_weights(&net, today, &deployed, &cfg).expect("routes");
        let j = reoptimize_joint(&net, today, &deployed, &cfg).expect("routes");
        println!(
            "  budget {budget} weight changes: weights-only MLU = {:.3} ({} changes), joint MLU = {:.3} ({} changes + waypoints)",
            w.mlu, w.weight_changes, j.mlu, j.weight_changes
        );
    }
    let full = reoptimize_unconstrained(
        &net,
        today,
        &deployed,
        &ReoptimizeConfig {
            ospf,
            ..Default::default()
        },
    )
    .expect("routes");
    println!(
        "  full re-optimization:        MLU = {:.3}, but {} weight changes (IGP churn)",
        full.mlu, full.weight_changes
    );
    println!("\nWaypoints are per-demand header state — re-assigning them costs no IGP");
    println!("re-convergence, which makes the joint knobs the operationally cheap ones.");
}
