//! Walks through the paper's worst-case constructions: why separate
//! link-weight or waypoint optimization can be Ω(n) or Ω(n log n) worse
//! than joint optimization.
//!
//! ```sh
//! cargo run --release --example worst_case_gaps
//! ```

use segrout_algos::lwo_apx;
use segrout_core::Router;
use segrout_instances::{
    harmonic, instance1, instance1::lwo_optimal_weights, instance2, instance3,
    instance34::instance3_lwo_optimal_weights,
};

fn main() {
    // ---- Instance 1: the linear gap (paper Figure 1) ----
    let m = 16;
    let inst = instance1(m);
    println!("TE-Instance 1, m = {m} (n = {}):", m + 1);

    let joint = Router::new(&inst.network, &inst.joint_weights)
        .evaluate(&inst.demands, &inst.joint_waypoints)
        .expect("routes")
        .mlu;
    println!("  Joint (1 waypoint/demand, Lemma 3.5):   MLU = {joint:.2}");

    let lwo_w = lwo_optimal_weights(&inst);
    let lwo = Router::new(&inst.network, &lwo_w)
        .mlu(&inst.demands)
        .expect("routes");
    println!("  best link weights alone (Lemma 3.6):    MLU = {lwo:.2}  (= m/2)");
    println!(
        "  => gap R_LWO = {:.1}, linear in n (Theorem 3.4)\n",
        lwo / joint
    );

    // ---- Instance 2: where even splitting loses a log factor ----
    let m2 = 32;
    let i2 = instance2(m2);
    let apx = lwo_apx(&i2.network, i2.source, i2.target).expect("routes");
    println!("TE-Instance 2, m = {m2} (harmonic parallel paths):");
    println!("  max flow |f*| = H_m = {:.3}", apx.max_flow_value);
    println!(
        "  best even-split flow = {:.3} (Lemma 3.10: always 1)",
        apx.es_flow_value
    );
    println!(
        "  => any weight setting wastes a factor {:.2} ~ ln n here\n",
        apx.achieved_ratio()
    );

    // ---- Instance 3: Omega(n log n) with two waypoints ----
    let m3 = 10;
    let i3 = instance3(m3);
    let joint3 = Router::new(&i3.network, &i3.joint_weights)
        .evaluate(&i3.demands, &i3.joint_waypoints)
        .expect("routes")
        .mlu;
    let lwo3 = Router::new(&i3.network, &instance3_lwo_optimal_weights(&i3))
        .mlu(&i3.demands)
        .expect("routes");
    println!("TE-Instance 3, m = {m3} (n = {}):", 2 * m3);
    println!("  Joint (2 waypoints/demand, Lemma 3.11): MLU = {joint3:.2}");
    println!(
        "  best link weights alone (Lemma 3.12):   MLU = {lwo3:.2}  (= m·H_m/2 = {:.2})",
        m3 as f64 * harmonic(m3) / 2.0
    );
    println!(
        "  => gap R_LWO = {:.1} ∈ Ω(n log n) (Theorem 3.15)",
        lwo3 / joint3
    );
    println!("\nMoral: waypoints are only as good as the weights beneath them —");
    println!("optimize both together (paper §3).");
}
