#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "CI OK"
