#!/usr/bin/env bash
# Local CI gate: formatting, lints, the full test suite under both a
# serial and a parallel thread count, and the serial-vs-parallel
# benchmark record.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# The pool's determinism contract means the thread count must be
# invisible to every test: run the whole suite serially and again with
# the pool active.
echo "==> cargo test -q --workspace  (SEGROUT_THREADS=1)"
SEGROUT_THREADS=1 cargo test -q --workspace

echo "==> cargo test -q --workspace  (SEGROUT_THREADS=4)"
SEGROUT_THREADS=4 cargo test -q --workspace

echo "==> bench_parallel (writes BENCH_parallel.json; SEGROUT_FAST=1 for a smoke run)"
cargo build --release -q -p segrout-bench
./target/release/bench_parallel

# Smoke-run the incremental-vs-scratch record (the differential suite
# already ran under both thread counts above; this checks the bench path
# and refreshes BENCH_incremental.json).
echo "==> bench_incremental (writes BENCH_incremental.json)"
SEGROUT_FAST=1 ./target/release/bench_incremental

# The LP engine differential suite (revised simplex vs reference tableau)
# in isolation — it is part of the workspace runs above, but this leg
# keeps a named gate on solver agreement even if test filters change.
echo "==> LP differential suite (revised vs tableau)"
cargo test -q -p segrout-lp --test differential

# Smoke-run the B&B node-throughput record (full numbers live in
# EXPERIMENTS.md; the smoke run checks the bench path and that both
# engines still agree on the benchmark MILPs).
echo "==> bench_simplex (writes BENCH_simplex.json)"
SEGROUT_FAST=1 ./target/release/bench_simplex

# Bounded differential-fuzz smoke leg: a fixed seed keeps it
# deterministic, --fast skips the MCF lower-bound check so the leg stays
# around half a minute. Any failure writes a shrunk reproducer that
# belongs in tests/corpus/.
echo "==> segrout fuzz smoke (seed 42, 60 cases, --fast)"
cargo build --release -q
./target/release/segrout fuzz --seed 42 --cases 60 --fast --corpus tests/corpus >/dev/null

# Replay every shrunk reproducer in tests/corpus/ through the full
# differential check (also part of the workspace runs above; the named
# leg keeps the corpus gate visible even if test filters change).
echo "==> corpus replay"
cargo test -q --test corpus_replay

echo "CI OK"
