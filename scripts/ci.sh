#!/usr/bin/env bash
# Local CI gate: formatting, lints, the full test suite under both a
# serial and a parallel thread count, and the serial-vs-parallel
# benchmark record.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# The pool's determinism contract means the thread count must be
# invisible to every test: run the whole suite serially and again with
# the pool active.
echo "==> cargo test -q --workspace  (SEGROUT_THREADS=1)"
SEGROUT_THREADS=1 cargo test -q --workspace

echo "==> cargo test -q --workspace  (SEGROUT_THREADS=4)"
SEGROUT_THREADS=4 cargo test -q --workspace

echo "==> bench_parallel (writes BENCH_parallel.json; SEGROUT_FAST=1 for a smoke run)"
cargo build --release -q -p segrout-bench
./target/release/bench_parallel

# Smoke-run the incremental-vs-scratch record (the differential suite
# already ran under both thread counts above; this checks the bench path
# and refreshes BENCH_incremental.json).
echo "==> bench_incremental (writes BENCH_incremental.json)"
SEGROUT_FAST=1 ./target/release/bench_incremental

# The LP engine differential suite (revised simplex vs reference tableau)
# in isolation — it is part of the workspace runs above, but this leg
# keeps a named gate on solver agreement even if test filters change.
echo "==> LP differential suite (revised vs tableau)"
cargo test -q -p segrout-lp --test differential

# Smoke-run the B&B node-throughput record (full numbers live in
# EXPERIMENTS.md; the smoke run checks the bench path and that both
# engines still agree on the benchmark MILPs).
echo "==> bench_simplex (writes BENCH_simplex.json)"
SEGROUT_FAST=1 ./target/release/bench_simplex

# Bounded differential-fuzz smoke leg: a fixed seed keeps it
# deterministic, --fast skips the MCF lower-bound check so the leg stays
# around half a minute. Any failure writes a shrunk reproducer that
# belongs in tests/corpus/.
echo "==> segrout fuzz smoke (seed 42, 60 cases, --fast)"
cargo build --release -q
./target/release/segrout fuzz --seed 42 --cases 60 --fast --corpus tests/corpus >/dev/null

# Replay every shrunk reproducer in tests/corpus/ through the full
# differential check (also part of the workspace runs above; the named
# leg keeps the corpus gate visible even if test filters change).
echo "==> corpus replay"
cargo test -q --test corpus_replay

# Hot-loop engine gate: the bucket-queue (Dial) Dijkstra and the CSR/
# prefix-slab arenas must stay bit-identical to the BinaryHeap oracle and
# the from-scratch router, under both the serial and the parallel pool.
echo "==> hotloop differential suite (SEGROUT_THREADS=1 and =4)"
SEGROUT_THREADS=1 cargo test -q --test hotloop_differential
SEGROUT_THREADS=4 cargo test -q --test hotloop_differential

# Flat-memory hot-loop record (full numbers live in EXPERIMENTS.md; the
# smoke run checks the bench path, the engine A/B bit-identity asserts,
# and that the record plus its provenance sibling land on disk).
echo "==> bench_hotloop (writes BENCH_hotloop_fast.json)"
SEGROUT_FAST=1 ./target/release/bench_hotloop
test -s BENCH_hotloop_fast.json || { echo "BENCH_hotloop_fast.json missing"; exit 1; }
test -s BENCH_hotloop_fast.run.json || { echo "BENCH_hotloop_fast.run.json missing"; exit 1; }

# Robust multi-matrix gate: the single-matrix reduction and the MILP
# oracle cross-checks must hold under both the serial and the parallel
# pool (also part of the workspace runs above; the named legs keep the
# robust contract visible even if test filters change).
echo "==> robust differential suite (SEGROUT_THREADS=1 and =4)"
SEGROUT_THREADS=1 cargo test -q --test robust_differential --test robust_properties
SEGROUT_THREADS=4 cargo test -q --test robust_differential --test robust_properties

# Multi-matrix fuzz smoke: a different seed band from the single-matrix
# leg above, biased toward scenarios carrying 2-6 traffic matrices so the
# robust validator, the single-matrix-reduction differential and the
# robust MILP oracle all see traffic on every CI run.
echo "==> segrout fuzz smoke, multi-matrix band (seed 1042, 60 cases, --fast)"
SEGROUT_THREADS=1 ./target/release/segrout fuzz --seed 1042 --cases 60 --fast \
    --corpus tests/corpus >/dev/null
SEGROUT_THREADS=4 ./target/release/segrout fuzz --seed 1042 --cases 60 --fast \
    --corpus tests/corpus >/dev/null

# Price-of-robustness record (full numbers live in EXPERIMENTS.md; the
# smoke run checks the bench path and the robust-never-loses assertion).
echo "==> bench_robust (writes BENCH_robust_fast.json)"
SEGROUT_FAST=1 ./target/release/bench_robust

# Failure-sweep gate: the edge-disable probe must stay bit-identical to
# from-scratch re-routing on the edge-deleted topology, under both the
# serial and the parallel pool and with both Dijkstra engines (the suite
# itself iterates the engine toggle).
echo "==> failure-sweep differential suite (SEGROUT_THREADS=1 and =4)"
SEGROUT_THREADS=1 cargo test -q --test failure_differential
SEGROUT_THREADS=4 cargo test -q --test failure_differential

# Failure-sweep throughput record (full numbers live in EXPERIMENTS.md;
# the smoke run checks the bench path, the disconnect classification and
# that the record lands on disk).
echo "==> bench_failsweep (writes BENCH_failsweep_fast.json)"
SEGROUT_FAST=1 ./target/release/bench_failsweep
test -s BENCH_failsweep_fast.json || { echo "BENCH_failsweep_fast.json missing"; exit 1; }

# Flight-recorder leg: a traced Germany50 optimization must produce a
# parseable convergence trace, a schema-1 run artifact, a collapsed-stack
# profile, and telemetry free of undocumented metric names; the artifact
# must compare clean against itself through `segrout report`.
echo "==> flight recorder (traced Germany50 run + report + catalog drift check)"
FR_DIR=$(mktemp -d)
trap 'rm -rf "$FR_DIR"' EXIT
./target/release/segrout optimize --topology Germany50 --algorithm heurospf \
    --seed 42 --restarts 0 --passes 3 \
    --trace-out "$FR_DIR/trace.jsonl" \
    --profile-out "$FR_DIR/profile.txt" \
    --run-out "$FR_DIR/run.json" \
    --metrics-out "$FR_DIR/metrics.jsonl" >/dev/null
python3 - "$FR_DIR" <<'EOF'
import json, sys, os
d = sys.argv[1]
# Trace: valid JSONL, dense seq, monotone best MLU.
last, n = float("inf"), 0
for i, line in enumerate(open(os.path.join(d, "trace.jsonl"))):
    p = json.loads(line)
    assert p["type"] == "trace" and p["seq"] == i, f"trace line {i+1}: {p}"
    assert p["mlu"] <= last + 1e-12, f"best MLU regressed at line {i+1}"
    last, n = p["mlu"], n + 1
assert n >= 2, "trace too short"
# Run artifact: schema 1 with provenance and metrics.
art = json.load(open(os.path.join(d, "run.json")))
assert art["type"] == "run" and art["schema"] == 1, "bad run artifact header"
for key in ("command", "seed", "wall_ms", "provenance", "metrics", "trace"):
    assert key in art, f"run.json lacks {key}"
assert art["provenance"]["host_cpus"] >= 1
assert len(art["trace"]) == n, "artifact trace disagrees with trace.jsonl"
# Collapsed stacks: "path;frames <integer self weight>" per line.
stacks = open(os.path.join(d, "profile.txt")).read().strip().splitlines()
assert stacks, "empty collapsed-stack profile"
for line in stacks:
    path, weight = line.rsplit(" ", 1)
    assert path and int(weight) >= 0, f"bad stack line: {line}"
assert any("heurospf" in line for line in stacks), "heurospf frame missing"
print(f"flight recorder OK: {n} trace points, {len(stacks)} stack lines")
EOF
./target/release/segrout report "$FR_DIR/run.json" "$FR_DIR/run.json"
./target/release/segrout catalog --check "$FR_DIR/metrics.jsonl"

# Online-serving gate: after every event the daemon's in-place state must
# be bit-identical to a from-scratch rebuild, and the whole event walk
# must replay identically at 1 and 4 worker threads with either Dijkstra
# engine (the suite itself iterates the thread/engine grid; the two env
# runs additionally pin the ambient default).
echo "==> serve differential suite (SEGROUT_THREADS=1 and =4)"
SEGROUT_THREADS=1 cargo test -q --test serve_differential --test serve_counters
SEGROUT_THREADS=4 cargo test -q --test serve_differential --test serve_counters

# Wire-protocol gate: the real binary over stdio JSONL — well-formed
# responses, monotone sequence numbers, error replies for malformed
# events, and byte-identical double replay.
echo "==> serve e2e suite (real binary over stdio)"
cargo test -q --test serve_e2e

# Serve-event fuzz smoke: a seed band biased toward cases carrying random
# event streams (no-ops, link flaps, disconnecting failures, out-of-range
# scalings) so the online-serving differential sees traffic on every run.
echo "==> segrout fuzz smoke, serve-event band (seed 2042, 60 cases, --fast)"
./target/release/segrout fuzz --seed 2042 --cases 60 --fast \
    --corpus tests/corpus >/dev/null

# Event-loop latency record (full numbers live in EXPERIMENTS.md; the
# smoke run checks the bench path, the tier-partition asserts, and a
# deliberately generous p99 bound as a catastrophic-regression tripwire).
echo "==> bench_serve (writes BENCH_serve_fast.json)"
SEGROUT_FAST=1 ./target/release/bench_serve
test -s BENCH_serve_fast.json || { echo "BENCH_serve_fast.json missing"; exit 1; }
python3 - <<'EOF'
import json
rec = json.load(open("BENCH_serve_fast.json"))
assert rec["events"] >= 60, rec["events"]
assert rec["probe_only"] + rec["local_reopts"] + rec["escalations"] + rec["errors"] == rec["events"]
# Generous: the fast trace's p99 sits well under 10 ms on one core.
assert rec["latency_p99_ms"] < 250.0, f"serve p99 regressed: {rec['latency_p99_ms']} ms"
print(f"bench_serve OK: p50 {rec['latency_p50_ms']:.3f} ms, p99 {rec['latency_p99_ms']:.3f} ms")
EOF

echo "CI OK"
