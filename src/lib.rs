//! # segrout
//!
//! Umbrella crate for the `segrout` workspace — a production-quality Rust
//! implementation of *Traffic Engineering with Joint Link Weight and Segment
//! Optimization* (Parham, Fenz, Süss, Foerster, Schmid — CoNEXT 2021).
//!
//! Everything is re-exported here so downstream users can depend on a
//! single crate:
//!
//! ```
//! use segrout::core::{DemandList, Network, NodeId};
//! use segrout::algos::{joint_heur, JointHeurConfig};
//!
//! let mut b = Network::builder(3);
//! b.bilink(NodeId(0), NodeId(1), 10.0);
//! b.bilink(NodeId(1), NodeId(2), 10.0);
//! b.bilink(NodeId(0), NodeId(2), 1.0);
//! let net = b.build().unwrap();
//!
//! let mut demands = DemandList::new();
//! demands.push(NodeId(0), NodeId(2), 5.0);
//!
//! let result = joint_heur(&net, &demands, &JointHeurConfig::default()).unwrap();
//! assert!(result.mlu <= 1.0 + 1e-9); // the detour fits
//! ```
//!
//! | module | contents |
//! |---|---|
//! | [`graph`] | directed multigraph, Dijkstra/SP-DAGs, max-flow, decompositions |
//! | [`core`]  | the TE model: networks, demands, weights, waypoints, ECMP engine |
//! | [`algos`] | LWO-APX, HeurOSPF, GreedyWPO, JOINT-Heur, MCF FPTAS |
//! | [`lp`]    | simplex + branch-and-bound MILP |
//! | [`milp`]  | OPT/LWO/WPO/Joint formulations |
//! | [`topo`]  | embedded backbones, SNDLib/GraphML parsers, generators |
//! | [`traffic`] | MCF-synthetic and gravity demand matrices |
//! | [`sim`]   | hash-based ECMP stream simulator |
//! | [`instances`] | the paper's worst-case constructions |
//! | [`obs`]   | structured events, span timers, metrics registry, JSONL telemetry |
//! | [`par`]   | deterministic worker pool: chunked `par_map` with ordered reduction |
//! | [`check`] | invariant validator, differential fuzzer, shrinking corpus |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use segrout_algos as algos;
pub use segrout_check as check;
pub use segrout_core as core;
pub use segrout_graph as graph;
pub use segrout_instances as instances;
pub use segrout_lp as lp;
pub use segrout_milp as milp;
pub use segrout_obs as obs;
pub use segrout_par as par;
pub use segrout_sim as sim;
pub use segrout_topo as topo;
pub use segrout_traffic as traffic;
