//! The `segrout` command-line tool: optimize embedded or parsed topologies,
//! inspect the paper's worst-case instances, and evaluate weight settings.
//!
//! ```text
//! segrout topo list
//! segrout topo show Abilene
//! segrout optimize --topology Abilene --traffic mcf --seed 3 --algorithm joint
//! segrout gaps --instance 1 --m 16
//! segrout parse --sndlib network.xml
//! ```

use segrout::algos::{
    greedy_wpo, heur_ospf, joint_heur, GreedyWpoConfig, HeurOspfConfig, JointHeurConfig,
};
use segrout::core::{Network, Router, UtilizationReport, WaypointSetting, WeightSetting};
use segrout::instances::{instance1, instance2, instance3, instance4, instance5, PaperInstance};
use segrout::topo::{by_name, parse_graphml, parse_sndlib_xml, TOPOLOGY_NAMES};
use segrout::traffic::{gravity, mcf_synthetic, TrafficConfig};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(&args[1..]);
    if let Err(e) = init_observability(&flags) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let result = match cmd.as_str() {
        "topo" => cmd_topo(&args[1..]),
        "optimize" => cmd_optimize(&flags),
        "gaps" => cmd_gaps(&flags),
        "parse" => cmd_parse(&flags),
        "fuzz" => cmd_fuzz(&flags),
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    // Final telemetry: metric records go to the JSONL sink (the stderr
    // pretty-printer ignores records), then everything is flushed.
    segrout::obs::dump_metrics();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "segrout — traffic engineering with joint link weight and segment optimization

USAGE:
  segrout topo list
  segrout topo show <name>
  segrout optimize --topology <name> [--traffic mcf|gravity] [--seed N]
                   [--algorithm unit|invcap|heurospf|greedywpo|joint] [--pairs F] [--top K]
                   [--save <config-file>] [--load <config-file>]
  segrout gaps --instance 1|2|3|4|5 [--m N]
  segrout parse (--sndlib <file> | --graphml <file>)
  segrout fuzz [--seed N] [--cases N] [--no-shrink] [--corpus <dir>] [--fast]
               differential fuzzing of the whole optimizer stack; failing
               cases are shrunk to minimal reproducers (default seed 42,
               500 cases; --fast skips the MCF lower-bound check)

OBSERVABILITY (any command):
  --log-level error|warn|info|debug|trace   stderr event verbosity (default warn)
  --metrics-out <file.jsonl>                write events + final metrics as JSON lines
  --threads <N>                             worker threads for the parallel optimizer
                                            paths (default: SEGROUT_THREADS, else all
                                            cores; results are identical at any N)"
    );
}

/// Applies the global `--log-level`, `--metrics-out` and `--threads` flags.
fn init_observability(flags: &HashMap<String, String>) -> Result<(), String> {
    if let Some(level) = flags.get("log-level") {
        let parsed = level
            .parse::<segrout::obs::Level>()
            .map_err(|e| format!("--log-level: {e}"))?;
        segrout::obs::set_level(parsed);
    }
    if let Some(path) = flags.get("metrics-out") {
        segrout::obs::init_jsonl(std::path::Path::new(path))
            .map_err(|e| format!("--metrics-out {path}: {e}"))?;
    }
    if let Some(n) = flags.get("threads") {
        let n: usize = n
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or("--threads: expected a positive integer")?;
        segrout::par::set_threads(n);
    }
    // Record the effective thread count in the run-summary table and in the
    // JSONL telemetry, whichever knob set it.
    segrout::obs::gauge("par.threads").set(segrout::par::threads() as f64);
    Ok(())
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = args
                .get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .unwrap_or_else(|| "true".to_string());
            let consumed = if value == "true" && args.get(i + 1).is_none_or(|v| v.starts_with("--"))
            {
                1
            } else {
                2
            };
            flags.insert(name.to_string(), value);
            i += consumed;
        } else {
            i += 1;
        }
    }
    flags
}

fn cmd_topo(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("list") => {
            for name in TOPOLOGY_NAMES {
                let net = by_name(name).ok_or("embedded topology missing")?;
                println!(
                    "{name:<14} {:>3} nodes, {:>3} directed links",
                    net.node_count(),
                    net.edge_count()
                );
            }
            Ok(())
        }
        Some("show") => {
            let name = args.get(1).ok_or("topo show needs a name")?;
            let net = by_name(name).ok_or_else(|| format!("unknown topology '{name}'"))?;
            println!("{name}:");
            print!("{}", segrout::topo::topology_stats(&net));
            for (e, u, v) in net.graph().edges() {
                println!(
                    "  {} -> {}  {:.0} Mbit/s",
                    net.node_name(u),
                    net.node_name(v),
                    net.capacity(e)
                );
            }
            Ok(())
        }
        _ => Err("topo subcommands: list, show <name>".into()),
    }
}

fn cmd_optimize(flags: &HashMap<String, String>) -> Result<(), String> {
    // Pre-register the core metric catalog so every run reports the same
    // names (zero-valued when a stage did not execute).
    for name in [
        "simplex.pivots",
        "simplex.solves",
        "simplex.refactorizations",
        "simplex.warm_starts",
        "milp.nodes_warm_started",
        "heurospf.iterations",
        "greedywpo.candidates_evaluated",
        "ecmp.recomputes",
        "incr.probes",
        "incr.dirty_dests",
        "incr.clean_dests",
        "incr.repairs",
        "dijkstra.relaxations",
        "dijkstra.runs",
        "mcf.phases",
        "par.tasks",
        "par.batches",
    ] {
        segrout::obs::counter(name);
    }
    segrout::obs::series("heurospf.mlu_trajectory");

    let topo_name = flags
        .get("topology")
        .map(String::as_str)
        .unwrap_or("Abilene");
    let net = by_name(topo_name).ok_or_else(|| format!("unknown topology '{topo_name}'"))?;
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(1);
    let pairs: f64 = flags
        .get("pairs")
        .map(|s| s.parse().map_err(|_| "bad --pairs"))
        .transpose()?
        .unwrap_or(0.2);
    let cfg = TrafficConfig {
        seed,
        pair_fraction: pairs,
        ..Default::default()
    };
    let demands = match flags.get("traffic").map(String::as_str).unwrap_or("mcf") {
        "mcf" => mcf_synthetic(&net, &cfg),
        "gravity" => gravity(&net, &cfg),
        other => return Err(format!("unknown traffic model '{other}'")),
    }
    .map_err(|e| e.to_string())?;
    println!(
        "{topo_name}: {} nodes, {} links; {} demands totalling {:.1}",
        net.node_count(),
        net.edge_count(),
        demands.len(),
        demands.total_size()
    );

    let algorithm = flags
        .get("algorithm")
        .map(String::as_str)
        .unwrap_or("joint");
    let (weights, waypoints) = if let Some(path) = flags.get("load") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        segrout::core::read_config(&net, &demands, &text).map_err(|e| e.to_string())?
    } else {
        let _span = segrout::obs::span("optimize");
        run_algorithm(&net, &demands, algorithm, seed)?
    };
    if let Some(path) = flags.get("save") {
        let text = segrout::core::write_config(&net, &weights, &waypoints);
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        println!("configuration saved to {path}");
    }
    let router = Router::new(&net, &weights);
    let report = router
        .evaluate(&demands, &waypoints)
        .map_err(|e| e.to_string())?;
    println!("algorithm: {algorithm}");
    println!("MLU: {:.4}", report.mlu);
    let with_wp = (0..demands.len())
        .filter(|&i| !waypoints.get(i).is_empty())
        .count();
    if with_wp > 0 {
        println!("waypointed demands: {with_wp}/{}", demands.len());
    }
    let top: usize = flags
        .get("top")
        .map(|s| s.parse().map_err(|_| "bad --top"))
        .transpose()?
        .unwrap_or(5);
    let util = UtilizationReport::new(&net, &report.loads);
    println!("\nhottest links:\n{}", util.format_top(&net, top));
    segrout::obs::gauge("run.mlu").set(report.mlu);
    println!("\nrun summary:\n{}", segrout::obs::summary_table());
    Ok(())
}

fn run_algorithm(
    net: &Network,
    demands: &segrout::core::DemandList,
    algorithm: &str,
    seed: u64,
) -> Result<(WeightSetting, WaypointSetting), String> {
    let none = WaypointSetting::none(demands.len());
    let ospf = HeurOspfConfig {
        seed,
        ..Default::default()
    };
    match algorithm {
        "unit" => Ok((WeightSetting::unit(net), none)),
        "invcap" => Ok((WeightSetting::inverse_capacity(net), none)),
        "heurospf" => Ok((heur_ospf(net, demands, &ospf), none)),
        "greedywpo" => {
            let w = WeightSetting::inverse_capacity(net);
            let wp = greedy_wpo(net, demands, &w, &GreedyWpoConfig::default())
                .map_err(|e| e.to_string())?;
            Ok((w, wp))
        }
        "joint" => {
            let r = joint_heur(
                net,
                demands,
                &JointHeurConfig {
                    ospf,
                    ..Default::default()
                },
            )
            .map_err(|e| e.to_string())?;
            Ok((r.weights, r.waypoints))
        }
        other => Err(format!("unknown algorithm '{other}'")),
    }
}

fn cmd_gaps(flags: &HashMap<String, String>) -> Result<(), String> {
    let which: u32 = flags
        .get("instance")
        .ok_or("gaps needs --instance")?
        .parse()
        .map_err(|_| "bad --instance")?;
    let m: usize = flags
        .get("m")
        .map(|s| s.parse().map_err(|_| "bad --m"))
        .transpose()?
        .unwrap_or(8);
    let inst: PaperInstance = match which {
        1 => instance1(m),
        2 => instance2(m),
        3 => instance3(m),
        4 => instance4(m),
        5 => instance5(m),
        other => return Err(format!("no TE-Instance {other}")),
    };
    let router = Router::new(&inst.network, &inst.joint_weights);
    let joint = router
        .evaluate(&inst.demands, &inst.joint_waypoints)
        .map_err(|e| e.to_string())?
        .mlu;
    println!(
        "TE-Instance {which} (m = {m}): {} nodes, {} links, {} demands (D = {:.3})",
        inst.network.node_count(),
        inst.network.edge_count(),
        inst.demands.len(),
        inst.demands.total_size()
    );
    println!("Joint (constructive lemma setting): MLU = {joint:.4}");
    // A quick LWO reference point via the unit setting and LWO-APX.
    let unit = Router::new(&inst.network, &WeightSetting::unit(&inst.network))
        .mlu(&inst.demands)
        .map_err(|e| e.to_string())?;
    println!("unit weights (no waypoints):        MLU = {unit:.4}");
    let apx = segrout::algos::lwo_apx(&inst.network, inst.source, inst.target)
        .map_err(|e| e.to_string())?;
    println!(
        "LWO-APX: |f*| = {:.4}, ES-flow = {:.4} (ratio {:.3})",
        apx.max_flow_value,
        apx.es_flow_value,
        apx.achieved_ratio()
    );
    Ok(())
}

fn cmd_fuzz(flags: &HashMap<String, String>) -> Result<(), String> {
    // The fuzzer's own metric catalog, pre-registered so every campaign
    // reports the same names.
    for name in ["check.cases", "check.violations", "check.shrink_steps"] {
        segrout::obs::counter(name);
    }
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(42);
    let cases: usize = flags
        .get("cases")
        .map(|s| s.parse().map_err(|_| "bad --cases"))
        .transpose()?
        .unwrap_or(500);
    let mut validator = segrout::check::ValidatorConfig::default();
    if flags.contains_key("fast") {
        validator.mcf_lower_bound = false;
    }
    let cfg = segrout::check::FuzzConfig {
        seed,
        cases,
        shrink: !flags.contains_key("no-shrink"),
        corpus_dir: flags.get("corpus").map(std::path::PathBuf::from),
        validator,
    };

    println!("fuzzing: {cases} cases from seed {seed} ...");
    let start = std::time::Instant::now();
    let report = segrout::check::fuzz_campaign(&cfg);
    let secs = start.elapsed().as_secs_f64();
    println!(
        "{} cases in {secs:.1}s ({:.1} cases/s): {} checks, {} benign errors, {} failures",
        report.cases,
        report.cases as f64 / secs.max(1e-9),
        report.checks,
        report.benign_errors,
        report.failures.len()
    );
    for f in &report.failures {
        println!(
            "\ncase {} (shrunk in {} steps): {}",
            f.index, f.shrink_steps, f.outcome
        );
        match &f.corpus_path {
            Some(p) => println!("reproducer written to {}", p.display()),
            None => println!("reproducer:\n{}", f.case.to_text()),
        }
    }
    println!("\nrun summary:\n{}", segrout::obs::summary_table());
    if report.failures.is_empty() {
        Ok(())
    } else {
        Err(format!("{} failing case(s)", report.failures.len()))
    }
}

fn cmd_parse(flags: &HashMap<String, String>) -> Result<(), String> {
    let (net, demands) = if let Some(path) = flags.get("sndlib") {
        let xml = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let (n, d) = parse_sndlib_xml(&xml).map_err(|e| e.to_string())?;
        (n, d)
    } else if let Some(path) = flags.get("graphml") {
        let xml = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        (
            parse_graphml(&xml, 1000.0).map_err(|e| e.to_string())?,
            None,
        )
    } else {
        return Err("parse needs --sndlib <file> or --graphml <file>".into());
    };
    println!(
        "parsed: {} nodes, {} directed links",
        net.node_count(),
        net.edge_count()
    );
    if let Some(d) = demands {
        println!(
            "demand matrix: {} entries totalling {:.1}",
            d.len(),
            d.total_size()
        );
    }
    Ok(())
}
