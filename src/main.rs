//! The `segrout` command-line tool: optimize embedded or parsed topologies,
//! inspect the paper's worst-case instances, and evaluate weight settings.
//!
//! ```text
//! segrout topo list
//! segrout topo show Abilene
//! segrout optimize --topology Abilene --traffic mcf --seed 3 --algorithm joint
//! segrout gaps --instance 1 --m 16
//! segrout parse --sndlib network.xml
//! ```

use segrout::algos::{
    greedy_wpo, greedy_wpo_robust, heur_ospf, heur_ospf_failure_robust, heur_ospf_robust,
    joint_heur, joint_heur_robust, GreedyWpoConfig, HeurOspfConfig, JointHeurConfig, ServeConfig,
    ServeEvent, ServeResponse, ServeSession,
};
use segrout::core::{
    evaluate_robust, sweep_failures, EdgeId, FailureSet, Network, NodeId, RobustObjective, Router,
    UtilizationReport, WaypointSetting, WeightSetting,
};
use segrout::instances::{instance1, instance2, instance3, instance4, instance5, PaperInstance};
use segrout::topo::{by_name, parse_graphml, parse_sndlib_xml, TOPOLOGY_NAMES};
use segrout::traffic::{
    diurnal_set, drifting_set, gravity, gravity_perturbation_set, mcf_synthetic, TrafficConfig,
};
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(&args[1..]);
    if let Err(e) = init_observability(&flags) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    if cmd == "report" {
        // Comparison verdicts get their own exit code (2 = regression) and
        // never print the usage banner.
        return match cmd_report(&args[1..], &flags) {
            Ok(false) => ExitCode::SUCCESS,
            Ok(true) => ExitCode::from(2),
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let result = match cmd.as_str() {
        "topo" => cmd_topo(&args[1..]),
        "optimize" => cmd_optimize(&flags),
        "serve" => cmd_serve(&flags),
        "sweep" => cmd_sweep(&flags),
        "gaps" => cmd_gaps(&flags),
        "parse" => cmd_parse(&flags),
        "fuzz" => cmd_fuzz(&flags),
        "catalog" => cmd_catalog(&flags),
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    // Flight-recorder artifacts (trace, collapsed-stack profile, run.json)
    // are written for successful runs only — a failed command has nothing
    // worth archiving and its artifact would shadow the previous good one.
    let result = result.and_then(|()| finish_flight_recorder(cmd, &flags));
    // Final telemetry: metric records go to the JSONL sink (the stderr
    // pretty-printer ignores records), then everything is flushed.
    segrout::obs::dump_metrics();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "segrout — traffic engineering with joint link weight and segment optimization

USAGE:
  segrout topo list
  segrout topo show <name>
  segrout optimize --topology <name> [--traffic mcf|gravity] [--seed N]
                   [--algorithm unit|invcap|heurospf|greedywpo|joint] [--pairs F] [--top K]
                   [--restarts N] [--passes N]
                   [--demand-set diurnal[:K]|perturb[:K]|drift[:K]] [--robust worst|q<value>]
                   robust multi-matrix mode: optimize one configuration
                   against a set of K traffic matrices (default 4) under the
                   worst-case or quantile objective (default worst)
                   [--save <config-file>] [--load <config-file>]
  segrout serve --topology <name> [--traffic mcf|gravity] [--seed N] [--pairs F]
                [--algorithm unit|invcap|heurospf|greedywpo|joint] [--load <config-file>]
                [--restarts N] [--passes N] [--budget K] [--slo-ms MS]
                [--reopt-ratio R] [--escalate-ratio R]
                [--events <file.jsonl> | --listen <addr:port>]
                online reoptimization daemon: optimize an initial configuration,
                then read JSONL events (stdin by default) — demand scaling,
                matrix replacement, link up/down, capacity changes — and answer
                each with a tiered policy (probe / budgeted local search /
                full-budget escalation), emitting one JSON response per event
                on stdout with the minimal-churn weight diff; --budget caps
                weight changes per local reopt (default 3), --slo-ms sets the
                per-event latency SLO (default 50, 0 disables); an
                {{\"event\":\"shutdown\"}} line stops the daemon
  segrout sweep --topology <name> [--traffic mcf|gravity] [--seed N] [--pairs F]
                [--algorithm unit|invcap|heurospf|greedywpo|joint|failrobust]
                [--doubles] [--scalings 0.8,1.0,1.2] [--robust worst|q<value>]
                [--restarts N] [--passes N] [--sweep-out <file.json>]
                enumerate all single-link (with --doubles also double-link)
                failure scenarios x demand scalings, evaluate each via the
                edge-disable probe engine, and print the MLU distribution
                plus the worst-case certificate; 'failrobust' optimizes the
                weights for the worst surviving scenario before sweeping
  segrout gaps --instance 1|2|3|4|5 [--m N]
  segrout parse (--sndlib <file> | --graphml <file>)
  segrout fuzz [--seed N] [--cases N] [--no-shrink] [--corpus <dir>] [--fast]
               differential fuzzing of the whole optimizer stack; failing
               cases are shrunk to minimal reproducers (default seed 42,
               500 cases; --fast skips the MCF lower-bound check)
  segrout report <old> <new> [--mlu-tol F] [--time-tol F] [--count-tol F]
               compare two run.json artifacts (or JSONL trace/metric files)
               and print a regression verdict table; exit 2 on regression
               (default tolerances: 0.01 / 0.25 / 0.10 relative)
  segrout catalog [--check <file.jsonl>]
               print the metric catalog; with --check, fail when the JSONL
               telemetry contains a metric the catalog does not document

OBSERVABILITY (any command):
  --log-level error|warn|info|debug|trace   stderr event verbosity (default warn)
  --metrics-out <file.jsonl>                write events + final metrics as JSON lines
  --trace-out <file.jsonl>                  record the optimizer convergence trace
                                            (one point per accepted move / B&B
                                            milestone) and write it as JSON lines
  --profile-out <file.txt>                  aggregate spans into a call-tree profile;
                                            write collapsed stacks (flamegraph input)
                                            and print the profile table
  --run-out <file.json>                     write a self-describing run artifact
                                            (provenance + metrics + trace); optimize
                                            defaults to run.json, 'none' disables
  --threads <N>                             worker threads for the parallel optimizer
                                            paths (default: SEGROUT_THREADS, else all
                                            cores; results are identical at any N)"
    );
}

/// Applies the global `--log-level`, `--metrics-out` and `--threads` flags.
fn init_observability(flags: &HashMap<String, String>) -> Result<(), String> {
    // Pin the telemetry epoch now: `elapsed_us` starts its clock at the
    // first observability call, and with the recorder off that could
    // otherwise be as late as artifact-write time (wall_ms ~ 0).
    let _ = segrout::obs::elapsed_us();
    if let Some(level) = flags.get("log-level") {
        let parsed = level
            .parse::<segrout::obs::Level>()
            .map_err(|e| format!("--log-level: {e}"))?;
        segrout::obs::set_level(parsed);
    }
    if let Some(path) = flags.get("metrics-out") {
        segrout::obs::init_jsonl(std::path::Path::new(path))
            .map_err(|e| format!("--metrics-out {path}: {e}"))?;
    }
    if let Some(n) = flags.get("threads") {
        let n: usize = n
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or("--threads: expected a positive integer")?;
        segrout::par::set_threads(n);
    }
    // Flight recorder: requesting an output file turns the recorder on; the
    // files themselves are written by `finish_flight_recorder`.
    if flags.contains_key("trace-out") {
        segrout::obs::set_trace_enabled(true);
    }
    if flags.contains_key("profile-out") {
        segrout::obs::set_profiling(true);
    }
    // Record the effective thread count in the run-summary table and in the
    // JSONL telemetry, whichever knob set it.
    segrout::obs::gauge("par.threads").set(segrout::par::threads() as f64);
    Ok(())
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = args
                .get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .unwrap_or_else(|| "true".to_string());
            let consumed = if value == "true" && args.get(i + 1).is_none_or(|v| v.starts_with("--"))
            {
                1
            } else {
                2
            };
            flags.insert(name.to_string(), value);
            i += consumed;
        } else {
            i += 1;
        }
    }
    flags
}

/// Tokens that are not `--flag` names or their values, in order. Mirrors the
/// consumption rule of `parse_flags` (every flag that is followed by a
/// non-`--` token consumes it as its value).
fn positionals(args: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += if args.get(i + 1).is_some_and(|v| !v.starts_with("--")) {
                2
            } else {
                1
            };
        } else {
            out.push(args[i].clone());
            i += 1;
        }
    }
    out
}

/// Writes the requested flight-recorder outputs: the convergence trace, the
/// collapsed-stack profile (plus its table on stdout), and the run artifact.
fn finish_flight_recorder(cmd: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    if let Some(path) = flags.get("trace-out") {
        let n = segrout::obs::write_trace_jsonl(Path::new(path))
            .map_err(|e| format!("--trace-out {path}: {e}"))?;
        eprintln!("trace: {n} points written to {path}");
    }
    if let Some(path) = flags.get("profile-out") {
        segrout::obs::write_collapsed_stacks(Path::new(path))
            .map_err(|e| format!("--profile-out {path}: {e}"))?;
        println!("\ncall-tree profile:\n{}", segrout::obs::profile_table());
        eprintln!("profile: collapsed stacks written to {path}");
    }
    // Every optimize run leaves a run.json behind unless told not to; other
    // commands write an artifact only on request.
    let run_out = flags
        .get("run-out")
        .cloned()
        .or_else(|| (cmd == "optimize").then(|| "run.json".to_string()));
    if let Some(path) = run_out.filter(|p| p != "none") {
        let seed = flags.get("seed").and_then(|s| s.parse::<u64>().ok());
        let mut extra: Vec<(&str, segrout::obs::Json)> = Vec::new();
        for key in ["topology", "algorithm", "traffic"] {
            if cmd == "optimize" || cmd == "serve" {
                let default = match key {
                    "topology" => "Abilene",
                    // The daemon's default initial configuration comes from
                    // the weight search alone (waypoints arrive later).
                    "algorithm" if cmd == "serve" => "heurospf",
                    "algorithm" => "joint",
                    _ => "mcf",
                };
                let value = flags.get(key).map(String::as_str).unwrap_or(default);
                extra.push((key, segrout::obs::Json::from(value)));
            }
        }
        segrout::obs::write_run_artifact(Path::new(&path), cmd, seed, &extra)
            .map_err(|e| format!("--run-out {path}: {e}"))?;
        eprintln!("run artifact written to {path}");
    }
    Ok(())
}

/// `segrout report <old> <new>`: compares two run artifacts or JSONL
/// telemetry files. Returns whether any statistic regressed.
fn cmd_report(args: &[String], flags: &HashMap<String, String>) -> Result<bool, String> {
    let pos = positionals(args);
    let [old_path, new_path] = pos.as_slice() else {
        return Err(format!(
            "report needs exactly two files (run.json artifacts or JSONL traces), got {}",
            pos.len()
        ));
    };
    let mut t = segrout::obs::Thresholds::default();
    for (key, slot) in [
        ("mlu-tol", &mut t.mlu_tol as &mut f64),
        ("time-tol", &mut t.time_tol),
        ("count-tol", &mut t.count_tol),
    ] {
        if let Some(v) = flags.get(key) {
            *slot = v
                .parse()
                .ok()
                .filter(|x: &f64| x.is_finite() && *x >= 0.0)
                .ok_or_else(|| format!("--{key}: expected a non-negative number"))?;
        }
    }
    let old = segrout::obs::load_run_stats(Path::new(old_path))?;
    let new = segrout::obs::load_run_stats(Path::new(new_path))?;
    let rows = segrout::obs::compare(&old, &new, t);
    print!("{}", segrout::obs::render_table(&old, &new, &rows));
    let regressed = segrout::obs::any_regressed(&rows);
    if regressed {
        eprintln!("verdict: REGRESSED");
    } else {
        println!("verdict: OK");
    }
    Ok(regressed)
}

/// Every metric the workspace registers, with kind and meaning. `segrout
/// catalog --check` fails when telemetry contains an undocumented name —
/// the drift check that keeps this table honest.
const METRIC_CATALOG: &[(&str, &str, &str)] = &[
    (
        "arena.rebuilds",
        "counter",
        "load-arena prefix-slab (re)folds: construction + dirty commits",
    ),
    (
        "arena.reuses",
        "counter",
        "probes whose load fold started from a cached prefix row",
    ),
    ("check.cases", "counter", "fuzz cases executed"),
    (
        "check.shrink_steps",
        "counter",
        "shrinking steps on failing fuzz cases",
    ),
    (
        "check.violations",
        "counter",
        "invariant violations found by the fuzzer",
    ),
    (
        "dijkstra.bucket_ops",
        "counter",
        "bucket-queue pushes in Dial-engine SP computations",
    ),
    (
        "dijkstra.relaxations",
        "counter",
        "edge relaxations across all SP computations",
    ),
    (
        "dijkstra.runs",
        "counter",
        "single-source shortest-path computations",
    ),
    ("ecmp.recomputes", "counter", "full ECMP load evaluations"),
    (
        "greedywpo.candidates_evaluated",
        "counter",
        "waypoint candidates probed",
    ),
    (
        "greedywpo.final_mlu",
        "gauge",
        "MLU after the waypoint stage",
    ),
    (
        "greedywpo.waypoints_set",
        "counter",
        "waypoints accepted by GreedyWPO",
    ),
    (
        "heurospf.best_mlu",
        "gauge",
        "best MLU found by the weight search",
    ),
    (
        "heurospf.iterations",
        "counter",
        "candidate weight evaluations",
    ),
    (
        "heurospf.mlu_trajectory",
        "series",
        "incumbent MLU at every accepted move",
    ),
    (
        "incr.clean_dests",
        "counter",
        "destinations skipped by the incremental engine",
    ),
    (
        "incr.dirty_dests",
        "counter",
        "destinations repaired by the incremental engine",
    ),
    (
        "incr.disable_probes",
        "counter",
        "incremental edge-disable (failure-scenario) probes",
    ),
    ("incr.probes", "counter", "incremental single-edge probes"),
    ("incr.repairs", "counter", "incremental commit repairs"),
    (
        "joint.final_mlu",
        "gauge",
        "MLU of the returned joint configuration",
    ),
    (
        "joint.stage1_mlu",
        "gauge",
        "MLU after the weight stage of JOINT-Heur",
    ),
    (
        "joint.stage2_mlu",
        "gauge",
        "MLU after the waypoint stage of JOINT-Heur",
    ),
    ("lwoapx.runs", "counter", "LWO-APX invocations"),
    ("mcf.augmentations", "counter", "MCF augmenting paths"),
    ("mcf.phases", "counter", "MCF scaling phases"),
    ("milp.nodes", "counter", "branch-and-bound nodes explored"),
    (
        "milp.nodes_warm_started",
        "counter",
        "B&B nodes solved from a parent basis",
    ),
    ("par.batches", "counter", "parallel batch dispatches"),
    (
        "par.steal_or_queue_wait",
        "histogram",
        "worker wait time per batch (ms)",
    ),
    ("par.tasks", "counter", "parallel tasks executed"),
    ("par.threads", "gauge", "effective worker-pool width"),
    (
        "reopt.evaluations",
        "counter",
        "candidate evaluations during re-optimization",
    ),
    (
        "robust.matrices",
        "gauge",
        "traffic matrices in the robust demand set",
    ),
    (
        "robust.matrix_evals",
        "counter",
        "per-matrix probe evaluations in the robust searches",
    ),
    (
        "robust.matrix_mlu",
        "series",
        "per-matrix MLU of the final robust configuration",
    ),
    (
        "robust.objective_mlu",
        "gauge",
        "robust-objective (worst-case/quantile) MLU of the final configuration",
    ),
    (
        "robust.worst_mlu",
        "gauge",
        "worst-case MLU of the final configuration over the demand set",
    ),
    (
        "run.mlu",
        "gauge",
        "final MLU of the evaluated configuration",
    ),
    (
        "serve.errors",
        "counter",
        "serve events rejected with an error reply",
    ),
    (
        "serve.escalations",
        "counter",
        "serve events escalated to the full-budget re-solve",
    ),
    (
        "serve.events",
        "counter",
        "events consumed by the serving loop",
    ),
    (
        "serve.latency_ms",
        "histogram",
        "per-event serving latency (ms)",
    ),
    (
        "serve.local_reopts",
        "counter",
        "serve events answered by the budgeted local search",
    ),
    (
        "serve.mlu",
        "gauge",
        "post-event MLU of the serving session",
    ),
    (
        "serve.probe_only",
        "counter",
        "serve events answered by the probe tier alone",
    ),
    (
        "serve.slo_violations",
        "counter",
        "serve events answered slower than the --slo-ms budget",
    ),
    (
        "serve.weight_churn",
        "counter",
        "link-weight changes deployed across all serve events",
    ),
    ("simplex.pivots", "counter", "simplex pivot operations"),
    (
        "sweep.disconnects",
        "counter",
        "failure scenarios classified as disconnecting",
    ),
    (
        "sweep.scenarios",
        "counter",
        "failure scenarios evaluated by the sweep engine",
    ),
    (
        "sweep.worst_mlu",
        "gauge",
        "worst-case MLU over all evaluated failure scenarios",
    ),
    (
        "simplex.refactorizations",
        "counter",
        "basis refactorizations",
    ),
    ("simplex.solves", "counter", "LP solves"),
    (
        "simplex.warm_starts",
        "counter",
        "LP solves warm-started from a basis",
    ),
];

/// Span names whose `time.<name>` histograms telemetry may contain.
const SPAN_CATALOG: &[&str] = &[
    "check.fuzz",
    "greedywpo",
    "heurospf",
    "joint_heur",
    "lwo_apx",
    "mcf",
    "heurospf_fail",
    "optimize",
    "par.batch",
    "reopt.joint",
    "reopt.weights",
    "serve.event",
    "simplex",
    "sweep",
];

fn cmd_catalog(flags: &HashMap<String, String>) -> Result<(), String> {
    if let Some(path) = flags.get("check") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let mut unknown: Vec<String> = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let rec = segrout::obs::Json::parse(line)
                .map_err(|e| format!("{path}:{}: not valid JSON ({e})", i + 1))?;
            // Only metric records carry a name; events and trace points are
            // schema-checked elsewhere.
            let is_metric = matches!(
                rec["type"].as_str(),
                Some("counter" | "gauge" | "histogram" | "series")
            );
            let Some(name) = rec["name"].as_str().filter(|_| is_metric) else {
                continue;
            };
            let documented = METRIC_CATALOG.iter().any(|(n, _, _)| *n == name)
                || name
                    .strip_prefix("time.")
                    .is_some_and(|span| SPAN_CATALOG.contains(&span));
            if !documented && !unknown.iter().any(|u| u == name) {
                unknown.push(name.to_string());
            }
        }
        if !unknown.is_empty() {
            return Err(format!(
                "metrics-catalog drift: {} undocumented metric(s): {}",
                unknown.len(),
                unknown.join(", ")
            ));
        }
        println!("catalog check passed: every metric in {path} is documented");
        return Ok(());
    }
    println!("{:<34} {:<10} description", "metric", "kind");
    for (name, kind, desc) in METRIC_CATALOG {
        println!("{name:<34} {kind:<10} {desc}");
    }
    for span in SPAN_CATALOG {
        println!("time.{span:<29} histogram  wall-time of the '{span}' span (ms)");
    }
    Ok(())
}

fn cmd_topo(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("list") => {
            for name in TOPOLOGY_NAMES {
                let net = by_name(name).ok_or("embedded topology missing")?;
                println!(
                    "{name:<14} {:>3} nodes, {:>3} directed links",
                    net.node_count(),
                    net.edge_count()
                );
            }
            Ok(())
        }
        Some("show") => {
            let name = args.get(1).ok_or("topo show needs a name")?;
            let net = by_name(name).ok_or_else(|| format!("unknown topology '{name}'"))?;
            println!("{name}:");
            print!("{}", segrout::topo::topology_stats(&net));
            for (e, u, v) in net.graph().edges() {
                println!(
                    "  {} -> {}  {:.0} Mbit/s",
                    net.node_name(u),
                    net.node_name(v),
                    net.capacity(e)
                );
            }
            Ok(())
        }
        _ => Err("topo subcommands: list, show <name>".into()),
    }
}

fn cmd_optimize(flags: &HashMap<String, String>) -> Result<(), String> {
    // Pre-register the core metric catalog so every run reports the same
    // names (zero-valued when a stage did not execute).
    for name in [
        "simplex.pivots",
        "simplex.solves",
        "simplex.refactorizations",
        "simplex.warm_starts",
        "milp.nodes",
        "milp.nodes_warm_started",
        "heurospf.iterations",
        "greedywpo.candidates_evaluated",
        "greedywpo.waypoints_set",
        "ecmp.recomputes",
        "incr.probes",
        "incr.dirty_dests",
        "incr.clean_dests",
        "incr.repairs",
        "arena.reuses",
        "arena.rebuilds",
        "dijkstra.relaxations",
        "dijkstra.runs",
        "dijkstra.bucket_ops",
        "mcf.phases",
        "par.tasks",
        "par.batches",
    ] {
        segrout::obs::counter(name);
    }
    segrout::obs::series("heurospf.mlu_trajectory");

    let topo_name = flags
        .get("topology")
        .map(String::as_str)
        .unwrap_or("Abilene");
    let net = by_name(topo_name).ok_or_else(|| format!("unknown topology '{topo_name}'"))?;
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(1);
    let pairs: f64 = flags
        .get("pairs")
        .map(|s| s.parse().map_err(|_| "bad --pairs"))
        .transpose()?
        .unwrap_or(0.2);
    let cfg = TrafficConfig {
        seed,
        pair_fraction: pairs,
        ..Default::default()
    };
    if let Some(spec) = flags.get("demand-set") {
        return cmd_optimize_robust(flags, &net, topo_name, &cfg, spec);
    }
    let demands = match flags.get("traffic").map(String::as_str).unwrap_or("mcf") {
        "mcf" => mcf_synthetic(&net, &cfg),
        "gravity" => gravity(&net, &cfg),
        other => return Err(format!("unknown traffic model '{other}'")),
    }
    .map_err(|e| e.to_string())?;
    println!(
        "{topo_name}: {} nodes, {} links; {} demands totalling {:.1}",
        net.node_count(),
        net.edge_count(),
        demands.len(),
        demands.total_size()
    );

    let algorithm = flags
        .get("algorithm")
        .map(String::as_str)
        .unwrap_or("joint");
    let ospf = ospf_config(flags, seed)?;
    let (weights, waypoints) = if let Some(path) = flags.get("load") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        segrout::core::read_config(&net, &demands, &text).map_err(|e| e.to_string())?
    } else {
        let _span = segrout::obs::span("optimize");
        run_algorithm(&net, &demands, algorithm, &ospf)?
    };
    if let Some(path) = flags.get("save") {
        let text = segrout::core::write_config(&net, &weights, &waypoints);
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        println!("configuration saved to {path}");
    }
    let router = Router::new(&net, &weights);
    let report = router
        .evaluate(&demands, &waypoints)
        .map_err(|e| e.to_string())?;
    println!("algorithm: {algorithm}");
    println!("MLU: {:.4}", report.mlu);
    let with_wp = (0..demands.len())
        .filter(|&i| !waypoints.get(i).is_empty())
        .count();
    if with_wp > 0 {
        println!("waypointed demands: {with_wp}/{}", demands.len());
    }
    let top: usize = flags
        .get("top")
        .map(|s| s.parse().map_err(|_| "bad --top"))
        .transpose()?
        .unwrap_or(5);
    let util = UtilizationReport::new(&net, &report.loads);
    println!("\nhottest links:\n{}", util.format_top(&net, top));
    segrout::obs::gauge("run.mlu").set(report.mlu);
    println!("\nrun summary:\n{}", segrout::obs::summary_table());
    Ok(())
}

/// `segrout sweep`: enumerates link-failure scenarios, evaluates each one
/// through the edge-disable probe engine, and prints the MLU distribution
/// plus the worst-case certificate. `--sweep-out` writes the full
/// per-scenario record as a schema'd JSON artifact.
fn cmd_sweep(flags: &HashMap<String, String>) -> Result<(), String> {
    // Pre-register the sweep metric catalog so every run reports the same
    // names (zero-valued when nothing fired).
    for name in [
        "sweep.scenarios",
        "sweep.disconnects",
        "incr.disable_probes",
        "incr.probes",
        "ecmp.recomputes",
        "dijkstra.runs",
    ] {
        segrout::obs::counter(name);
    }
    let topo_name = flags
        .get("topology")
        .map(String::as_str)
        .unwrap_or("Abilene");
    let net = by_name(topo_name).ok_or_else(|| format!("unknown topology '{topo_name}'"))?;
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(1);
    let pairs: f64 = flags
        .get("pairs")
        .map(|s| s.parse().map_err(|_| "bad --pairs"))
        .transpose()?
        .unwrap_or(0.2);
    let cfg = TrafficConfig {
        seed,
        pair_fraction: pairs,
        ..Default::default()
    };
    let demands = match flags.get("traffic").map(String::as_str).unwrap_or("mcf") {
        "mcf" => mcf_synthetic(&net, &cfg),
        "gravity" => gravity(&net, &cfg),
        other => return Err(format!("unknown traffic model '{other}'")),
    }
    .map_err(|e| e.to_string())?;

    let doubles = flags.contains_key("doubles");
    let scalings: Vec<f64> = match flags.get("scalings") {
        Some(spec) => spec
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<f64>()
                    .ok()
                    .filter(|x| x.is_finite() && *x > 0.0)
                    .ok_or_else(|| format!("--scalings: '{s}' is not a positive number"))
            })
            .collect::<Result<_, _>>()?,
        None => vec![1.0],
    };
    let robust = flags
        .get("robust")
        .map(|s| RobustObjective::parse(s))
        .transpose()?
        .unwrap_or(RobustObjective::WorstCase);
    let set = FailureSet::enumerate(&net, doubles);
    println!(
        "{topo_name}: {} nodes, {} directed links ({} undirected); {} demands totalling {:.1}",
        net.node_count(),
        net.edge_count(),
        set.link_count(),
        demands.len(),
        demands.total_size()
    );
    println!(
        "failure set: {} patterns ({}) x {} scaling(s) = {} scenarios",
        set.len(),
        if doubles {
            "singles + doubles"
        } else {
            "singles"
        },
        scalings.len(),
        set.len() * scalings.len()
    );

    let algorithm = flags
        .get("algorithm")
        .map(String::as_str)
        .unwrap_or("heurospf");
    let ospf = ospf_config(flags, seed)?;
    let (weights, waypoints) = {
        let _span = segrout::obs::span("optimize");
        if algorithm == "failrobust" {
            let w = heur_ospf_failure_robust(&net, &demands, &set, robust, &ospf);
            (w, WaypointSetting::none(demands.len()))
        } else {
            run_algorithm(&net, &demands, algorithm, &ospf)?
        }
    };
    println!("algorithm: {algorithm}");

    let rep = {
        let _span = segrout::obs::span("sweep");
        sweep_failures(&net, &weights, &demands, &waypoints, &set, &scalings)
            .map_err(|e| e.to_string())?
    };
    for (i, &s) in rep.scalings.iter().enumerate() {
        println!("intact MLU @ x{s:<5.2} = {:.4}", rep.base_mlu[i]);
    }
    println!(
        "\n{} scenarios: {} evaluated, {} disconnecting",
        rep.scenarios, rep.evaluated, rep.disconnects
    );
    let dist = rep.mlu_distribution();
    if !dist.is_empty() {
        let q = |p: f64| RobustObjective::Quantile(p).aggregate(&dist);
        println!(
            "failure MLU distribution: min {:.4}  p50 {:.4}  p90 {:.4}  p99 {:.4}  max {:.4}",
            dist[0],
            q(0.5),
            q(0.9),
            q(0.99),
            dist[dist.len() - 1]
        );
        println!(
            "objective ({robust:?}) MLU: {:.4}",
            rep.aggregate_mlu(robust).expect("non-empty distribution")
        );
    }
    if let Some(w) = &rep.worst {
        let (u, v) = net.graph().endpoints(w.bottleneck);
        println!(
            "\nworst case: fail {{{}}} @ x{:.2} -> MLU {:.4}",
            set.pattern_label(&net, w.pattern),
            w.scale,
            w.mlu
        );
        println!(
            "  bottleneck {} -> {}: load {:.1} / capacity {:.1}",
            net.node_name(u),
            net.node_name(v),
            w.bottleneck_load,
            net.capacity(w.bottleneck)
        );
        segrout::obs::gauge("run.mlu").set(w.mlu);
    }
    if let Some(path) = flags.get("sweep-out") {
        let artifact = sweep_artifact(&net, topo_name, algorithm, &set, &rep);
        std::fs::write(path, artifact.render()).map_err(|e| format!("{path}: {e}"))?;
        println!("\nsweep artifact written to {path}");
    }
    println!("\nrun summary:\n{}", segrout::obs::summary_table());
    Ok(())
}

/// Renders a [`segrout::core::SweepReport`] as the schema'd sweep artifact
/// (`segrout.sweep/1`): sweep-level aggregates plus one row per scenario.
fn sweep_artifact(
    net: &Network,
    topology: &str,
    algorithm: &str,
    set: &FailureSet,
    rep: &segrout::core::SweepReport,
) -> segrout::obs::Json {
    use segrout::core::ScenarioOutcome;
    use segrout::obs::Json;
    let rows: Vec<Json> = rep
        .results
        .iter()
        .map(|r| {
            let mut fields = vec![
                ("pattern", Json::from(set.pattern_label(net, r.pattern))),
                ("scaling", Json::from(rep.scalings[r.scaling])),
            ];
            match r.outcome {
                ScenarioOutcome::Evaluated {
                    mlu,
                    phi,
                    dirty_dests,
                } => {
                    fields.push(("outcome", Json::from("evaluated")));
                    fields.push(("mlu", Json::from(mlu)));
                    fields.push(("phi", Json::from(phi)));
                    fields.push(("dirty_dests", Json::from(dirty_dests as f64)));
                }
                ScenarioOutcome::Disconnected { src, dst } => {
                    fields.push(("outcome", Json::from("disconnected")));
                    fields.push(("severed_src", Json::from(net.node_name(src))));
                    fields.push(("severed_dst", Json::from(net.node_name(dst))));
                }
            }
            Json::obj(fields)
        })
        .collect();
    let worst = rep.worst.as_ref().map_or(Json::Null, |w| {
        let (u, v) = net.graph().endpoints(w.bottleneck);
        Json::obj([
            ("pattern", Json::from(set.pattern_label(net, w.pattern))),
            ("scaling", Json::from(w.scale)),
            ("mlu", Json::from(w.mlu)),
            (
                "bottleneck",
                Json::from(format!("{} -> {}", net.node_name(u), net.node_name(v))),
            ),
            ("bottleneck_load", Json::from(w.bottleneck_load)),
            (
                "bottleneck_capacity",
                Json::from(net.capacity(w.bottleneck)),
            ),
        ])
    });
    segrout::obs::attach_provenance(Json::obj([
        ("schema", Json::from("segrout.sweep/1")),
        ("topology", Json::from(topology)),
        ("algorithm", Json::from(algorithm)),
        ("links", Json::from(rep.link_count as f64)),
        ("patterns", Json::from(rep.patterns as f64)),
        (
            "scalings",
            Json::arr(rep.scalings.iter().map(|&s| Json::from(s))),
        ),
        ("scenarios", Json::from(rep.scenarios as f64)),
        ("evaluated", Json::from(rep.evaluated as f64)),
        ("disconnects", Json::from(rep.disconnects as f64)),
        (
            "base_mlu",
            Json::arr(rep.base_mlu.iter().map(|&m| Json::from(m))),
        ),
        ("worst", worst),
        ("results", Json::arr(rows)),
    ]))
}

/// Shared `--restarts`/`--passes` parsing for the weight-search stages.
fn ospf_config(flags: &HashMap<String, String>, seed: u64) -> Result<HeurOspfConfig, String> {
    let mut ospf = HeurOspfConfig {
        seed,
        ..Default::default()
    };
    if let Some(r) = flags.get("restarts") {
        ospf.restarts = r.parse().map_err(|_| "bad --restarts")?;
    }
    if let Some(p) = flags.get("passes") {
        ospf.max_passes = p
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or("--passes: expected a positive integer")?;
    }
    Ok(ospf)
}

/// `segrout optimize --demand-set <kind>[:K]`: robust multi-matrix mode.
/// Builds a demand set from one of the `segrout-traffic` set generators,
/// optimizes one configuration for the `--robust` objective over every
/// matrix, and reports per-matrix and aggregate results.
fn cmd_optimize_robust(
    flags: &HashMap<String, String>,
    net: &Network,
    topo_name: &str,
    cfg: &TrafficConfig,
    spec: &str,
) -> Result<(), String> {
    segrout::obs::counter("robust.matrix_evals");
    let (kind, count) = match spec.split_once(':') {
        Some((k, c)) => (
            k,
            c.parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("--demand-set {spec}: matrix count must be >= 1"))?,
        ),
        None => (spec, 4),
    };
    let set = match kind {
        "diurnal" => diurnal_set(net, cfg, count, 0.6),
        "perturb" => gravity_perturbation_set(net, cfg, count, 0.4),
        "drift" => drifting_set(net, cfg, count, 0.3),
        other => {
            return Err(format!(
                "unknown demand-set kind '{other}' (expected diurnal, perturb or drift)"
            ))
        }
    }
    .map_err(|e| e.to_string())?;
    let robust = flags
        .get("robust")
        .map(|s| RobustObjective::parse(s))
        .transpose()?
        .unwrap_or(RobustObjective::WorstCase);
    segrout::obs::gauge("robust.matrices").set(set.len() as f64);
    println!(
        "{topo_name}: {} nodes, {} links; {} '{kind}' matrices x {} pairs \
         (objective: {robust:?})",
        net.node_count(),
        net.edge_count(),
        set.len(),
        set.pair_count()
    );

    let algorithm = flags
        .get("algorithm")
        .map(String::as_str)
        .unwrap_or("joint");
    let seed = cfg.seed;
    let ospf = ospf_config(flags, seed)?;
    let none = WaypointSetting::none(set.pair_count());
    let (weights, waypoints) = if let Some(path) = flags.get("load") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        segrout::core::read_config(net, set.matrix(0), &text).map_err(|e| e.to_string())?
    } else {
        let _span = segrout::obs::span("optimize");
        match algorithm {
            "unit" => (WeightSetting::unit(net), none),
            "invcap" => (WeightSetting::inverse_capacity(net), none),
            "heurospf" => (heur_ospf_robust(net, &set, robust, &ospf), none),
            "greedywpo" => {
                let w = WeightSetting::inverse_capacity(net);
                let wp = greedy_wpo_robust(net, &set, &w, robust, &GreedyWpoConfig::default())
                    .map_err(|e| e.to_string())?;
                (w, wp)
            }
            "joint" => {
                let r = joint_heur_robust(
                    net,
                    &set,
                    robust,
                    &JointHeurConfig {
                        ospf: ospf.clone(),
                        ..Default::default()
                    },
                )
                .map_err(|e| e.to_string())?;
                (r.weights, r.waypoints)
            }
            other => return Err(format!("unknown algorithm '{other}'")),
        }
    };
    if let Some(path) = flags.get("save") {
        let text = segrout::core::write_config(net, &weights, &waypoints);
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        println!("configuration saved to {path}");
    }

    let rep = evaluate_robust(net, &weights, &set, &waypoints).map_err(|e| e.to_string())?;
    let objective_mlu = rep.aggregate_mlu(robust);
    println!("algorithm: {algorithm}");
    println!("\nper-matrix evaluation:");
    let mlu_series = segrout::obs::series("robust.matrix_mlu");
    for (k, (name, _)) in set.iter().enumerate() {
        println!(
            "  {name:<8} MLU {:>8.4}   Phi {:>12.4}",
            rep.mlus[k], rep.phis[k]
        );
        mlu_series.push(rep.mlus[k]);
        segrout::obs::trace_point("robust.matrix", k as u64, rep.phis[k], rep.mlus[k]);
    }
    println!("objective MLU: {objective_mlu:.4}");
    println!("worst-case MLU: {:.4}", rep.worst_mlu());
    let with_wp = (0..set.pair_count())
        .filter(|&i| !waypoints.get(i).is_empty())
        .count();
    if with_wp > 0 {
        println!("waypointed demands: {with_wp}/{}", set.pair_count());
    }
    segrout::obs::gauge("robust.worst_mlu").set(rep.worst_mlu());
    segrout::obs::gauge("robust.objective_mlu").set(objective_mlu);
    segrout::obs::gauge("run.mlu").set(objective_mlu);
    println!("\nrun summary:\n{}", segrout::obs::summary_table());
    Ok(())
}

fn run_algorithm(
    net: &Network,
    demands: &segrout::core::DemandList,
    algorithm: &str,
    ospf: &HeurOspfConfig,
) -> Result<(WeightSetting, WaypointSetting), String> {
    let none = WaypointSetting::none(demands.len());
    match algorithm {
        "unit" => Ok((WeightSetting::unit(net), none)),
        "invcap" => Ok((WeightSetting::inverse_capacity(net), none)),
        "heurospf" => Ok((heur_ospf(net, demands, ospf), none)),
        "greedywpo" => {
            let w = WeightSetting::inverse_capacity(net);
            let wp = greedy_wpo(net, demands, &w, &GreedyWpoConfig::default())
                .map_err(|e| e.to_string())?;
            Ok((w, wp))
        }
        "joint" => {
            let r = joint_heur(
                net,
                demands,
                &JointHeurConfig {
                    ospf: ospf.clone(),
                    ..Default::default()
                },
            )
            .map_err(|e| e.to_string())?;
            Ok((r.weights, r.waypoints))
        }
        other => Err(format!("unknown algorithm '{other}'")),
    }
}

/// `segrout serve`: the online reoptimization daemon. Optimizes an initial
/// configuration, opens a [`ServeSession`] (one live incremental evaluator,
/// never rebuilt), and answers a JSONL event stream — stdin by default,
/// `--events <file>` for replay, `--listen <addr>` for TCP. stdout carries
/// exactly one JSON response per input line (the protocol); all human
/// output goes to stderr, so replaying the same event log twice produces
/// byte-identical response streams.
fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    // Pre-register the serving metric catalog so every run reports the same
    // names (zero-valued when a tier never fired).
    for name in [
        "serve.events",
        "serve.errors",
        "serve.probe_only",
        "serve.local_reopts",
        "serve.escalations",
        "serve.slo_violations",
        "serve.weight_churn",
        "reopt.evaluations",
        "incr.probes",
        "incr.dirty_dests",
        "incr.clean_dests",
        "incr.repairs",
        "incr.disable_probes",
        "arena.reuses",
        "arena.rebuilds",
        "ecmp.recomputes",
        "dijkstra.runs",
    ] {
        segrout::obs::counter(name);
    }
    let latency = segrout::obs::histogram("serve.latency_ms", segrout::obs::latency_bounds_ms());
    segrout::obs::gauge("serve.mlu");

    let topo_name = flags
        .get("topology")
        .map(String::as_str)
        .unwrap_or("Abilene");
    let net = by_name(topo_name).ok_or_else(|| format!("unknown topology '{topo_name}'"))?;
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(1);
    let pairs: f64 = flags
        .get("pairs")
        .map(|s| s.parse().map_err(|_| "bad --pairs"))
        .transpose()?
        .unwrap_or(0.2);
    let cfg = TrafficConfig {
        seed,
        pair_fraction: pairs,
        ..Default::default()
    };
    let demands = match flags.get("traffic").map(String::as_str).unwrap_or("mcf") {
        "mcf" => mcf_synthetic(&net, &cfg),
        "gravity" => gravity(&net, &cfg),
        other => return Err(format!("unknown traffic model '{other}'")),
    }
    .map_err(|e| e.to_string())?;

    let algorithm = flags
        .get("algorithm")
        .map(String::as_str)
        .unwrap_or("heurospf");
    let ospf = ospf_config(flags, seed)?;
    let (weights, waypoints) = if let Some(path) = flags.get("load") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        segrout::core::read_config(&net, &demands, &text).map_err(|e| e.to_string())?
    } else {
        let _span = segrout::obs::span("optimize");
        run_algorithm(&net, &demands, algorithm, &ospf)?
    };

    let mut scfg = ServeConfig::default();
    scfg.reopt.ospf = ospf;
    if let Some(b) = flags.get("budget") {
        scfg.reopt.max_weight_changes = b
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or("--budget: expected a positive integer")?;
    }
    if let Some(s) = flags.get("slo-ms") {
        scfg.slo_ms = s
            .parse()
            .ok()
            .filter(|x: &f64| x.is_finite())
            .ok_or("--slo-ms: expected a number (0 disables)")?;
    }
    for (key, slot) in [
        ("reopt-ratio", &mut scfg.reopt_ratio as &mut f64),
        ("escalate-ratio", &mut scfg.escalate_ratio),
    ] {
        if let Some(v) = flags.get(key) {
            *slot = v
                .parse()
                .ok()
                .filter(|x: &f64| x.is_finite() && *x >= 1.0)
                .ok_or_else(|| format!("--{key}: expected a number >= 1"))?;
        }
    }

    let n_demands = demands.len();
    let mut session = ServeSession::new(&net, &weights, demands, waypoints, scfg)
        .map_err(|e| format!("cannot open serving session: {e}"))?;
    eprintln!(
        "serve: {topo_name} ({} nodes, {} links), {n_demands} demands; \
         initial {algorithm} MLU {:.4}; budget {} weight change(s)/reopt, SLO {} ms",
        net.node_count(),
        net.edge_count(),
        session.evaluator().mlu(),
        session.config().reopt.max_weight_changes,
        session.config().slo_ms,
    );

    if let Some(addr) = flags.get("listen") {
        serve_tcp(addr, &mut session)?;
    } else if let Some(path) = flags.get("events") {
        let file = std::fs::File::open(path).map_err(|e| format!("--events {path}: {e}"))?;
        let mut out = std::io::stdout().lock();
        serve_stream(&mut session, std::io::BufReader::new(file), &mut out)?;
    } else {
        let stdin = std::io::stdin().lock();
        let mut out = std::io::stdout().lock();
        serve_stream(&mut session, stdin, &mut out)?;
    }

    let st = *session.stats();
    eprintln!(
        "serve: {} event(s): {} probe-only, {} local reopt(s), {} escalation(s), {} error(s)",
        st.events, st.probe_only, st.local_reopts, st.escalations, st.errors
    );
    eprintln!(
        "serve: total churn {} weight change(s); latency p50 {:.3} ms, p99 {:.3} ms; \
         {} SLO violation(s)",
        st.weight_churn,
        latency.quantile(0.5),
        latency.quantile(0.99),
        st.slo_violations
    );
    segrout::obs::gauge("run.mlu").set(session.evaluator().mlu());
    eprintln!("\nrun summary:\n{}", segrout::obs::summary_table());
    Ok(())
}

/// Feeds one JSONL event stream through the session, writing one response
/// line per input line. Returns `true` when a shutdown event arrived.
fn serve_stream<R: std::io::BufRead, W: std::io::Write>(
    session: &mut ServeSession<'_>,
    input: R,
    out: &mut W,
) -> Result<bool, String> {
    for line in input.lines() {
        let line = line.map_err(|e| format!("event stream: {e}"))?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let response = match parse_event(line) {
            Ok(None) => {
                // Shutdown is a control line, not an event: it gets an ack,
                // consumes no sequence number, and stops the daemon.
                let bye = segrout::obs::Json::obj([
                    ("type", segrout::obs::Json::from("bye")),
                    ("events", segrout::obs::Json::from(session.stats().events)),
                ]);
                writeln!(out, "{}", bye.render()).map_err(|e| format!("response stream: {e}"))?;
                out.flush().map_err(|e| format!("response stream: {e}"))?;
                return Ok(true);
            }
            Ok(Some(event)) => session.apply(&event),
            Err(reason) => session.reject(&reason),
        };
        writeln!(out, "{}", render_response(&response))
            .map_err(|e| format!("response stream: {e}"))?;
        // The daemon is interactive: every answer must reach the peer now,
        // not at buffer-boundary time.
        out.flush().map_err(|e| format!("response stream: {e}"))?;
    }
    Ok(false)
}

/// Accepts TCP connections one at a time, serving each until it closes;
/// session state persists across connections. A shutdown event terminates
/// the daemon.
fn serve_tcp(addr: &str, session: &mut ServeSession<'_>) -> Result<(), String> {
    let listener =
        std::net::TcpListener::bind(addr).map_err(|e| format!("--listen {addr}: {e}"))?;
    match listener.local_addr() {
        Ok(a) => eprintln!("serve: listening on {a}"),
        Err(_) => eprintln!("serve: listening on {addr}"),
    }
    for conn in listener.incoming() {
        let stream = conn.map_err(|e| format!("accept: {e}"))?;
        let reader =
            std::io::BufReader::new(stream.try_clone().map_err(|e| format!("socket: {e}"))?);
        let mut writer = stream;
        if serve_stream(session, reader, &mut writer)? {
            return Ok(());
        }
    }
    Ok(())
}

/// Parses one JSONL input line into a [`ServeEvent`]. `Ok(None)` is the
/// shutdown control line; `Err` is a malformed line the session will
/// reject (with the reason echoed in the error reply).
fn parse_event(line: &str) -> Result<Option<ServeEvent>, String> {
    let rec = segrout::obs::Json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let kind = rec["event"]
        .as_str()
        .ok_or("missing or non-string 'event' field")?;
    let uint_field = |name: &str| -> Result<u32, String> {
        rec[name]
            .as_i64()
            .and_then(|i| u32::try_from(i).ok())
            .ok_or_else(|| format!("'{name}' must be a non-negative integer"))
    };
    let float_field = |name: &str| -> Result<f64, String> {
        rec[name]
            .as_f64()
            .ok_or_else(|| format!("'{name}' must be a number"))
    };
    match kind {
        "noop" => Ok(Some(ServeEvent::Noop)),
        "shutdown" => Ok(None),
        "demand" => Ok(Some(ServeEvent::DemandScale {
            index: uint_field("index")? as usize,
            factor: float_field("factor")?,
        })),
        "matrix" => {
            let entries = rec["demands"]
                .as_arr()
                .ok_or("'demands' must be an array of [src, dst, size] triples")?;
            let mut demands = Vec::with_capacity(entries.len());
            for (i, entry) in entries.iter().enumerate() {
                let triple = entry
                    .as_arr()
                    .filter(|t| t.len() == 3)
                    .ok_or_else(|| format!("demands[{i}] must be [src, dst, size]"))?;
                let node = |j: usize| {
                    triple[j]
                        .as_i64()
                        .and_then(|x| u32::try_from(x).ok())
                        .ok_or_else(|| format!("demands[{i}][{j}] must be a node id"))
                };
                let size = triple[2]
                    .as_f64()
                    .ok_or_else(|| format!("demands[{i}][2] must be a number"))?;
                demands.push((NodeId(node(0)?), NodeId(node(1)?), size));
            }
            Ok(Some(ServeEvent::DemandMatrix { demands }))
        }
        "link_down" => Ok(Some(ServeEvent::LinkDown {
            edge: EdgeId(uint_field("edge")?),
        })),
        "link_up" => Ok(Some(ServeEvent::LinkUp {
            edge: EdgeId(uint_field("edge")?),
        })),
        "capacity" => Ok(Some(ServeEvent::Capacity {
            edge: EdgeId(uint_field("edge")?),
            capacity: float_field("capacity")?,
        })),
        other => Err(format!("unknown event type '{other}'")),
    }
}

/// Renders a [`ServeResponse`] as one protocol line. Latency is excluded:
/// it is the one nondeterministic field, and the protocol stream must be
/// byte-identical across replays of the same event log.
fn render_response(r: &ServeResponse) -> String {
    use segrout::obs::Json;
    let diffs = Json::arr(
        r.weight_diffs
            .iter()
            .map(|&(e, old, new)| Json::arr([Json::from(e.0), Json::from(old), Json::from(new)])),
    );
    let mut fields = vec![
        ("type", Json::from("serve")),
        ("seq", Json::from(r.seq)),
        ("tier", Json::from(r.tier.as_str())),
        ("mlu", Json::from(r.mlu)),
        ("phi", Json::from(r.phi)),
        ("churn", Json::from(r.churn)),
        ("evaluations", Json::from(r.evaluations)),
        ("weight_diffs", diffs),
    ];
    if let Some(e) = &r.error {
        fields.push(("error", Json::from(e.as_str())));
    }
    Json::obj(fields).render()
}

fn cmd_gaps(flags: &HashMap<String, String>) -> Result<(), String> {
    let which: u32 = flags
        .get("instance")
        .ok_or("gaps needs --instance")?
        .parse()
        .map_err(|_| "bad --instance")?;
    let m: usize = flags
        .get("m")
        .map(|s| s.parse().map_err(|_| "bad --m"))
        .transpose()?
        .unwrap_or(8);
    let inst: PaperInstance = match which {
        1 => instance1(m),
        2 => instance2(m),
        3 => instance3(m),
        4 => instance4(m),
        5 => instance5(m),
        other => return Err(format!("no TE-Instance {other}")),
    };
    let router = Router::new(&inst.network, &inst.joint_weights);
    let joint = router
        .evaluate(&inst.demands, &inst.joint_waypoints)
        .map_err(|e| e.to_string())?
        .mlu;
    println!(
        "TE-Instance {which} (m = {m}): {} nodes, {} links, {} demands (D = {:.3})",
        inst.network.node_count(),
        inst.network.edge_count(),
        inst.demands.len(),
        inst.demands.total_size()
    );
    println!("Joint (constructive lemma setting): MLU = {joint:.4}");
    // A quick LWO reference point via the unit setting and LWO-APX.
    let unit = Router::new(&inst.network, &WeightSetting::unit(&inst.network))
        .mlu(&inst.demands)
        .map_err(|e| e.to_string())?;
    println!("unit weights (no waypoints):        MLU = {unit:.4}");
    let apx = segrout::algos::lwo_apx(&inst.network, inst.source, inst.target)
        .map_err(|e| e.to_string())?;
    println!(
        "LWO-APX: |f*| = {:.4}, ES-flow = {:.4} (ratio {:.3})",
        apx.max_flow_value,
        apx.es_flow_value,
        apx.achieved_ratio()
    );
    Ok(())
}

fn cmd_fuzz(flags: &HashMap<String, String>) -> Result<(), String> {
    // The fuzzer's own metric catalog, pre-registered so every campaign
    // reports the same names.
    for name in ["check.cases", "check.violations", "check.shrink_steps"] {
        segrout::obs::counter(name);
    }
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(42);
    let cases: usize = flags
        .get("cases")
        .map(|s| s.parse().map_err(|_| "bad --cases"))
        .transpose()?
        .unwrap_or(500);
    let mut validator = segrout::check::ValidatorConfig::default();
    if flags.contains_key("fast") {
        validator.mcf_lower_bound = false;
    }
    let cfg = segrout::check::FuzzConfig {
        seed,
        cases,
        shrink: !flags.contains_key("no-shrink"),
        corpus_dir: flags.get("corpus").map(std::path::PathBuf::from),
        validator,
    };

    println!("fuzzing: {cases} cases from seed {seed} ...");
    let start = std::time::Instant::now();
    let report = segrout::check::fuzz_campaign(&cfg);
    let secs = start.elapsed().as_secs_f64();
    println!(
        "{} cases in {secs:.1}s ({:.1} cases/s): {} checks, {} benign errors, {} failures",
        report.cases,
        report.cases as f64 / secs.max(1e-9),
        report.checks,
        report.benign_errors,
        report.failures.len()
    );
    for f in &report.failures {
        println!(
            "\ncase {} (shrunk in {} steps): {}",
            f.index, f.shrink_steps, f.outcome
        );
        match &f.corpus_path {
            Some(p) => println!("reproducer written to {}", p.display()),
            None => println!("reproducer:\n{}", f.case.to_text()),
        }
    }
    println!("\nrun summary:\n{}", segrout::obs::summary_table());
    if report.failures.is_empty() {
        Ok(())
    } else {
        Err(format!("{} failing case(s)", report.failures.len()))
    }
}

fn cmd_parse(flags: &HashMap<String, String>) -> Result<(), String> {
    let (net, demands) = if let Some(path) = flags.get("sndlib") {
        let xml = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let (n, d) = parse_sndlib_xml(&xml).map_err(|e| e.to_string())?;
        (n, d)
    } else if let Some(path) = flags.get("graphml") {
        let xml = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        (
            parse_graphml(&xml, 1000.0).map_err(|e| e.to_string())?,
            None,
        )
    } else {
        return Err("parse needs --sndlib <file> or --graphml <file>".into());
    };
    println!(
        "parsed: {} nodes, {} directed links",
        net.node_count(),
        net.edge_count()
    );
    if let Some(d) = demands {
        println!(
            "demand matrix: {} entries totalling {:.1}",
            d.len(),
            d.total_size()
        );
    }
    Ok(())
}
