//! End-to-end tests of the `segrout` CLI binary.

use std::process::Command;

fn segrout(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_segrout"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn topo_list_shows_all_embedded_networks() {
    let (ok, stdout, _) = segrout(&["topo", "list"]);
    assert!(ok);
    for name in ["Abilene", "Germany50", "Ta2"] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn topo_show_prints_stats_and_links() {
    let (ok, stdout, _) = segrout(&["topo", "show", "Abilene"]);
    assert!(ok);
    assert!(stdout.contains("12 nodes"));
    assert!(stdout.contains("strongly connected"));
    assert!(stdout.contains("ATLAM5"));
}

#[test]
fn gaps_reports_instance_1() {
    let (ok, stdout, _) = segrout(&["gaps", "--instance", "1", "--m", "6"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Joint (constructive lemma setting): MLU = 1.0000"));
    assert!(stdout.contains("LWO-APX"));
}

#[test]
fn optimize_with_baseline_algorithm() {
    let (ok, stdout, _) = segrout(&[
        "optimize",
        "--topology",
        "Abilene",
        "--algorithm",
        "invcap",
        "--seed",
        "3",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("MLU:"));
    assert!(stdout.contains("hottest links"));
}

#[test]
fn save_and_load_round_trip() {
    let dir = std::env::temp_dir().join("segrout-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cfg.txt");
    let path_str = path.to_str().unwrap();

    let (ok, stdout, _) = segrout(&[
        "optimize",
        "--topology",
        "Abilene",
        "--algorithm",
        "greedywpo",
        "--seed",
        "7",
        "--save",
        path_str,
    ]);
    assert!(ok, "{stdout}");
    let mlu_line = stdout
        .lines()
        .find(|l| l.starts_with("MLU:"))
        .expect("MLU printed")
        .to_string();

    let (ok2, stdout2, _) = segrout(&[
        "optimize",
        "--topology",
        "Abilene",
        "--seed",
        "7",
        "--load",
        path_str,
    ]);
    assert!(ok2, "{stdout2}");
    assert!(
        stdout2.contains(&mlu_line),
        "loaded config must reproduce '{mlu_line}' in:\n{stdout2}"
    );
}

#[test]
fn metrics_out_writes_valid_jsonl() {
    let dir = std::env::temp_dir().join("segrout-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.jsonl");
    let path_str = path.to_str().unwrap();

    let (ok, stdout, _) = segrout(&[
        "optimize",
        "--topology",
        "Abilene",
        "--traffic",
        "mcf",
        "--algorithm",
        "joint",
        "--seed",
        "1",
        "--metrics-out",
        path_str,
        "--log-level",
        "debug",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("run summary"), "summary table printed");

    let text = std::fs::read_to_string(&path).expect("telemetry file exists");
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "telemetry must be non-empty");
    for (i, line) in lines.iter().enumerate() {
        let parsed = segrout::obs::Json::parse(line)
            .unwrap_or_else(|e| panic!("line {} is not valid JSON ({e}): {line}", i + 1));
        assert!(
            parsed["type"] != segrout::obs::Json::Null,
            "line {} lacks a type: {line}",
            i + 1
        );
    }

    // The acceptance-critical metrics all appear as records.
    for name in [
        "heurospf.iterations",
        "heurospf.mlu_trajectory",
        "greedywpo.candidates_evaluated",
        "simplex.pivots",
        "time.heurospf",
        "time.greedywpo",
        "time.optimize",
    ] {
        assert!(
            text.contains(&format!("\"name\":\"{name}\"")),
            "metric {name} missing from telemetry:\n{text}"
        );
    }

    // The MLU trajectory is a real per-iteration series.
    let traj_line = lines
        .iter()
        .find(|l| l.contains("\"name\":\"heurospf.mlu_trajectory\""))
        .expect("trajectory record");
    let traj = segrout::obs::Json::parse(traj_line).unwrap();
    let values = traj["values"].as_arr().expect("values array");
    assert!(values.len() >= 2, "trajectory should have several samples");
}

fn segrout_code(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_segrout"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("segrout-cli-test").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn trace_profile_and_run_artifact_outputs() {
    let dir = tmp_dir("flight");
    let trace = dir.join("trace.jsonl");
    let profile = dir.join("profile.txt");
    let run = dir.join("run.json");

    let (ok, stdout, stderr) = segrout(&[
        "optimize",
        "--topology",
        "Abilene",
        "--algorithm",
        "heurospf",
        "--seed",
        "3",
        "--trace-out",
        trace.to_str().unwrap(),
        "--profile-out",
        profile.to_str().unwrap(),
        "--run-out",
        run.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}\n{stderr}");
    assert!(stdout.contains("call-tree profile"), "{stdout}");

    // Convergence trace: valid JSONL, dense sequence, monotone best MLU.
    let text = std::fs::read_to_string(&trace).expect("trace written");
    let mut last_mlu = f64::INFINITY;
    let mut n = 0i64;
    for (i, line) in text.lines().enumerate() {
        let p = segrout::obs::Json::parse(line).expect("trace line parses");
        assert_eq!(p["type"], "trace");
        assert_eq!(p["seq"].as_i64(), Some(i as i64), "seq must be dense");
        assert!(p["event"].as_str().unwrap().starts_with("heurospf."));
        let mlu = p["mlu"].as_f64().expect("finite mlu");
        assert!(
            mlu <= last_mlu + 1e-12,
            "best MLU regressed at line {}: {mlu} > {last_mlu}",
            i + 1
        );
        last_mlu = mlu;
        n += 1;
    }
    assert!(n >= 2, "expected at least start + done trace points");

    // Collapsed stacks: `path;frames <self-weight-µs>` per line.
    let stacks = std::fs::read_to_string(&profile).expect("profile written");
    assert!(!stacks.trim().is_empty());
    let mut frames = Vec::new();
    for line in stacks.lines() {
        let (path, weight) = line.rsplit_once(' ').expect("two fields");
        assert!(weight.parse::<u64>().is_ok(), "weight not integer: {line}");
        frames.extend(path.split(';').map(str::to_string));
    }
    assert!(
        frames.iter().any(|f| f == "optimize"),
        "profile must contain the optimize root frame: {stacks}"
    );

    // Run artifact: one self-describing JSON document.
    let art = segrout::obs::Json::parse(&std::fs::read_to_string(&run).unwrap())
        .expect("run artifact parses");
    assert_eq!(art["type"], "run");
    assert_eq!(art["schema"].as_i64(), Some(1));
    assert_eq!(art["command"], "optimize");
    assert_eq!(art["seed"].as_i64(), Some(3));
    assert_eq!(art["algorithm"], "heurospf");
    assert!(art["wall_ms"].as_f64().unwrap() > 0.0);
    assert!(art["provenance"]["host_cpus"].as_i64().unwrap() >= 1);
    assert!(
        art["metrics"]["heurospf.iterations"]["value"]
            .as_i64()
            .unwrap()
            > 0
    );
    assert!(art["trace"].as_arr().unwrap().len() as i64 == n);
}

#[test]
fn report_of_identical_runs_is_ok() {
    let dir = tmp_dir("report-ok");
    let a = dir.join("a.run.json");
    let b = dir.join("b.run.json");
    for path in [&a, &b] {
        let (ok, stdout, stderr) = segrout(&[
            "optimize",
            "--topology",
            "Abilene",
            "--algorithm",
            "heurospf",
            "--seed",
            "5",
            "--trace-out",
            dir.join("t.jsonl").to_str().unwrap(),
            "--run-out",
            path.to_str().unwrap(),
        ]);
        assert!(ok, "{stdout}\n{stderr}");
    }
    // Wall-clock rows are noisy (this test binary runs in parallel), so
    // compare with timing effectively unchecked: the deterministic rows —
    // final MLU and every work counter — must agree exactly.
    let (code, stdout, _) = segrout_code(&[
        "report",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--time-tol",
        "1000",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("final MLU"), "{stdout}");
    assert!(stdout.contains("verdict: OK"), "{stdout}");
    let mlu_row = stdout
        .lines()
        .find(|l| l.starts_with("final MLU"))
        .expect("final MLU row");
    assert!(mlu_row.trim_end().ends_with("OK"), "{mlu_row}");
}

#[test]
fn report_flags_regression_with_exit_code_2() {
    let dir = tmp_dir("report-regressed");
    let old = dir.join("old.run.json");
    let new = dir.join("new.run.json");
    let artifact = |mlu: f64| {
        format!(
            "{{\"type\":\"run\",\"schema\":1,\"metrics\":{{\"run.mlu\":{{\"kind\":\"gauge\",\"value\":{mlu}}}}}}}"
        )
    };
    std::fs::write(&old, artifact(1.50)).unwrap();
    std::fs::write(&new, artifact(1.80)).unwrap();

    let (code, stdout, stderr) =
        segrout_code(&["report", old.to_str().unwrap(), new.to_str().unwrap()]);
    assert_eq!(code, Some(2), "{stdout}\n{stderr}");
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(stderr.contains("verdict: REGRESSED"), "{stderr}");

    // A generous threshold turns the same comparison into a pass.
    let (code, stdout, _) = segrout_code(&[
        "report",
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        "--mlu-tol",
        "0.5",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("verdict: OK"), "{stdout}");
}

#[test]
fn report_rejects_bad_arguments() {
    let (ok, _, stderr) = segrout(&["report", "only-one-file.json"]);
    assert!(!ok);
    assert!(stderr.contains("exactly two files"), "{stderr}");

    let dir = tmp_dir("report-bad");
    let a = dir.join("a.json");
    std::fs::write(&a, "{\"type\":\"run\",\"schema\":1}").unwrap();
    let (ok, _, stderr) = segrout(&[
        "report",
        a.to_str().unwrap(),
        a.to_str().unwrap(),
        "--mlu-tol",
        "minus-one",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--mlu-tol"), "{stderr}");
}

#[test]
fn catalog_lists_metrics_and_check_accepts_real_telemetry() {
    let (ok, stdout, _) = segrout(&["catalog"]);
    assert!(ok);
    for name in ["heurospf.iterations", "run.mlu", "time.optimize"] {
        assert!(stdout.contains(name), "catalog must list {name}:\n{stdout}");
    }

    let dir = tmp_dir("catalog");
    let metrics = dir.join("metrics.jsonl");
    let (ok, stdout, stderr) = segrout(&[
        "optimize",
        "--topology",
        "Abilene",
        "--algorithm",
        "joint",
        "--seed",
        "1",
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}\n{stderr}");
    let (ok, stdout, stderr) = segrout(&["catalog", "--check", metrics.to_str().unwrap()]);
    assert!(ok, "catalog drift: {stdout}\n{stderr}");
    assert!(stdout.contains("catalog check passed"), "{stdout}");
}

#[test]
fn catalog_check_flags_undocumented_metric() {
    let dir = tmp_dir("catalog-drift");
    let metrics = dir.join("drift.jsonl");
    std::fs::write(
        &metrics,
        "{\"type\":\"counter\",\"name\":\"bogus.metric\",\"value\":1}\n",
    )
    .unwrap();
    let (ok, _, stderr) = segrout(&["catalog", "--check", metrics.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("bogus.metric"), "{stderr}");
}

#[test]
fn bad_log_level_fails_cleanly() {
    let (ok, _, stderr) = segrout(&["optimize", "--log-level", "shouty"]);
    assert!(!ok);
    assert!(stderr.contains("--log-level"), "{stderr}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let (ok, _, stderr) = segrout(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("USAGE"));
}

#[test]
fn unknown_topology_fails_cleanly() {
    let (ok, _, stderr) = segrout(&["optimize", "--topology", "NoSuchNet"]);
    assert!(!ok);
    assert!(stderr.contains("unknown topology"));
}

#[test]
fn parse_rejects_missing_file() {
    let (ok, _, stderr) = segrout(&["parse", "--sndlib", "/nonexistent/file.xml"]);
    assert!(!ok);
    assert!(stderr.contains("error"));
}
