//! End-to-end tests of the `segrout` CLI binary.

use std::process::Command;

fn segrout(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_segrout"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn topo_list_shows_all_embedded_networks() {
    let (ok, stdout, _) = segrout(&["topo", "list"]);
    assert!(ok);
    for name in ["Abilene", "Germany50", "Ta2"] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn topo_show_prints_stats_and_links() {
    let (ok, stdout, _) = segrout(&["topo", "show", "Abilene"]);
    assert!(ok);
    assert!(stdout.contains("12 nodes"));
    assert!(stdout.contains("strongly connected"));
    assert!(stdout.contains("ATLAM5"));
}

#[test]
fn gaps_reports_instance_1() {
    let (ok, stdout, _) = segrout(&["gaps", "--instance", "1", "--m", "6"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Joint (constructive lemma setting): MLU = 1.0000"));
    assert!(stdout.contains("LWO-APX"));
}

#[test]
fn optimize_with_baseline_algorithm() {
    let (ok, stdout, _) = segrout(&[
        "optimize",
        "--topology",
        "Abilene",
        "--algorithm",
        "invcap",
        "--seed",
        "3",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("MLU:"));
    assert!(stdout.contains("hottest links"));
}

#[test]
fn save_and_load_round_trip() {
    let dir = std::env::temp_dir().join("segrout-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cfg.txt");
    let path_str = path.to_str().unwrap();

    let (ok, stdout, _) = segrout(&[
        "optimize",
        "--topology",
        "Abilene",
        "--algorithm",
        "greedywpo",
        "--seed",
        "7",
        "--save",
        path_str,
    ]);
    assert!(ok, "{stdout}");
    let mlu_line = stdout
        .lines()
        .find(|l| l.starts_with("MLU:"))
        .expect("MLU printed")
        .to_string();

    let (ok2, stdout2, _) = segrout(&[
        "optimize",
        "--topology",
        "Abilene",
        "--seed",
        "7",
        "--load",
        path_str,
    ]);
    assert!(ok2, "{stdout2}");
    assert!(
        stdout2.contains(&mlu_line),
        "loaded config must reproduce '{mlu_line}' in:\n{stdout2}"
    );
}

#[test]
fn metrics_out_writes_valid_jsonl() {
    let dir = std::env::temp_dir().join("segrout-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.jsonl");
    let path_str = path.to_str().unwrap();

    let (ok, stdout, _) = segrout(&[
        "optimize",
        "--topology",
        "Abilene",
        "--traffic",
        "mcf",
        "--algorithm",
        "joint",
        "--seed",
        "1",
        "--metrics-out",
        path_str,
        "--log-level",
        "debug",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("run summary"), "summary table printed");

    let text = std::fs::read_to_string(&path).expect("telemetry file exists");
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "telemetry must be non-empty");
    for (i, line) in lines.iter().enumerate() {
        let parsed = segrout::obs::Json::parse(line)
            .unwrap_or_else(|e| panic!("line {} is not valid JSON ({e}): {line}", i + 1));
        assert!(
            parsed["type"] != segrout::obs::Json::Null,
            "line {} lacks a type: {line}",
            i + 1
        );
    }

    // The acceptance-critical metrics all appear as records.
    for name in [
        "heurospf.iterations",
        "heurospf.mlu_trajectory",
        "greedywpo.candidates_evaluated",
        "simplex.pivots",
        "time.heurospf",
        "time.greedywpo",
        "time.optimize",
    ] {
        assert!(
            text.contains(&format!("\"name\":\"{name}\"")),
            "metric {name} missing from telemetry:\n{text}"
        );
    }

    // The MLU trajectory is a real per-iteration series.
    let traj_line = lines
        .iter()
        .find(|l| l.contains("\"name\":\"heurospf.mlu_trajectory\""))
        .expect("trajectory record");
    let traj = segrout::obs::Json::parse(traj_line).unwrap();
    let values = traj["values"].as_arr().expect("values array");
    assert!(values.len() >= 2, "trajectory should have several samples");
}

#[test]
fn bad_log_level_fails_cleanly() {
    let (ok, _, stderr) = segrout(&["optimize", "--log-level", "shouty"]);
    assert!(!ok);
    assert!(stderr.contains("--log-level"), "{stderr}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let (ok, _, stderr) = segrout(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("USAGE"));
}

#[test]
fn unknown_topology_fails_cleanly() {
    let (ok, _, stderr) = segrout(&["optimize", "--topology", "NoSuchNet"]);
    assert!(!ok);
    assert!(stderr.contains("unknown topology"));
}

#[test]
fn parse_rejects_missing_file() {
    let (ok, _, stderr) = segrout(&["parse", "--sndlib", "/nonexistent/file.xml"]);
    assert!(!ok);
    assert!(stderr.contains("error"));
}
