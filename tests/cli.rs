//! End-to-end tests of the `segrout` CLI binary.

use std::process::Command;

fn segrout(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_segrout"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn topo_list_shows_all_embedded_networks() {
    let (ok, stdout, _) = segrout(&["topo", "list"]);
    assert!(ok);
    for name in ["Abilene", "Germany50", "Ta2"] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn topo_show_prints_stats_and_links() {
    let (ok, stdout, _) = segrout(&["topo", "show", "Abilene"]);
    assert!(ok);
    assert!(stdout.contains("12 nodes"));
    assert!(stdout.contains("strongly connected"));
    assert!(stdout.contains("ATLAM5"));
}

#[test]
fn gaps_reports_instance_1() {
    let (ok, stdout, _) = segrout(&["gaps", "--instance", "1", "--m", "6"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Joint (constructive lemma setting): MLU = 1.0000"));
    assert!(stdout.contains("LWO-APX"));
}

#[test]
fn optimize_with_baseline_algorithm() {
    let (ok, stdout, _) = segrout(&[
        "optimize",
        "--topology",
        "Abilene",
        "--algorithm",
        "invcap",
        "--seed",
        "3",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("MLU:"));
    assert!(stdout.contains("hottest links"));
}

#[test]
fn save_and_load_round_trip() {
    let dir = std::env::temp_dir().join("segrout-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cfg.txt");
    let path_str = path.to_str().unwrap();

    let (ok, stdout, _) = segrout(&[
        "optimize",
        "--topology",
        "Abilene",
        "--algorithm",
        "greedywpo",
        "--seed",
        "7",
        "--save",
        path_str,
    ]);
    assert!(ok, "{stdout}");
    let mlu_line = stdout
        .lines()
        .find(|l| l.starts_with("MLU:"))
        .expect("MLU printed")
        .to_string();

    let (ok2, stdout2, _) = segrout(&[
        "optimize",
        "--topology",
        "Abilene",
        "--seed",
        "7",
        "--load",
        path_str,
    ]);
    assert!(ok2, "{stdout2}");
    assert!(
        stdout2.contains(&mlu_line),
        "loaded config must reproduce '{mlu_line}' in:\n{stdout2}"
    );
}

#[test]
fn unknown_command_fails_with_usage() {
    let (ok, _, stderr) = segrout(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("USAGE"));
}

#[test]
fn unknown_topology_fails_cleanly() {
    let (ok, _, stderr) = segrout(&["optimize", "--topology", "NoSuchNet"]);
    assert!(!ok);
    assert!(stderr.contains("unknown topology"));
}

#[test]
fn parse_rejects_missing_file() {
    let (ok, _, stderr) = segrout(&["parse", "--sndlib", "/nonexistent/file.xml"]);
    assert!(!ok);
    assert!(stderr.contains("error"));
}
