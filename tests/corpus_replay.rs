//! Replays every shrunk reproducer in `tests/corpus/` through the full
//! differential check. Each file is a [`segrout::check::Case`] — either a
//! hand-seeded anchor or a minimal reproducer written by a fuzz campaign —
//! and must pass cleanly: a regression here means a previously fixed bug is
//! back.

use segrout::check::{Case, CaseOutcome, ValidatorConfig};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn corpus_cases_parse_and_round_trip() {
    let mut seen = 0;
    for entry in std::fs::read_dir(corpus_dir()).expect("tests/corpus must exist") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "case") {
            continue;
        }
        seen += 1;
        let text = std::fs::read_to_string(&path).unwrap();
        let case = Case::from_text(&text)
            .unwrap_or_else(|e| panic!("{}: parse failed: {e}", path.display()));
        // Serialization is canonical: a second round trip is a fixed point.
        let canon = case.to_text();
        assert_eq!(
            Case::from_text(&canon).unwrap(),
            case,
            "{}: round trip diverged",
            path.display()
        );
    }
    assert!(seen >= 1, "the corpus must hold at least one case");
}

#[test]
fn corpus_cases_pass_the_full_differential_check() {
    let vcfg = ValidatorConfig::default();
    let mut seen = 0;
    for entry in std::fs::read_dir(corpus_dir()).expect("tests/corpus must exist") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "case") {
            continue;
        }
        seen += 1;
        let text = std::fs::read_to_string(&path).unwrap();
        let case = Case::from_text(&text)
            .unwrap_or_else(|e| panic!("{}: parse failed: {e}", path.display()));
        match case.run(&vcfg) {
            CaseOutcome::Pass { checks } => {
                assert!(checks > 0, "{}: ran zero checks", path.display());
            }
            other => panic!("{}: {other}", path.display()),
        }
    }
    assert!(seen >= 1, "the corpus must hold at least one case");
}
