//! End-to-end pipeline tests: topology -> traffic -> optimizers ->
//! evaluation, exactly as the experiment harness wires them together.

use segrout_algos::{
    greedy_wpo, heur_ospf, joint_heur, max_concurrent_flow, GreedyWpoConfig, HeurOspfConfig,
    JointHeurConfig,
};
use segrout_core::{Router, WaypointSetting, WeightSetting};
use segrout_milp::{wpo_ilp, WpoIlpOptions};
use segrout_topo::{abilene, by_name};
use segrout_traffic::{gravity, mcf_synthetic, TrafficConfig};

fn quick_ospf(seed: u64) -> HeurOspfConfig {
    HeurOspfConfig {
        seed,
        restarts: 0,
        max_passes: 6,
        ..Default::default()
    }
}

/// The Figure-4 pipeline on Abilene: every optimizer runs, and the quality
/// ordering InverseCapacity >= HeurOSPF >= JointHeur holds.
#[test]
fn abilene_pipeline_quality_ordering() {
    let net = abilene();
    let demands = mcf_synthetic(
        &net,
        &TrafficConfig {
            seed: 42,
            ..Default::default()
        },
    )
    .expect("connected");

    let inv = WeightSetting::inverse_capacity(&net);
    let inv_mlu = Router::new(&net, &inv).mlu(&demands).expect("routes");

    let joint = joint_heur(
        &net,
        &demands,
        &JointHeurConfig {
            ospf: quick_ospf(1),
            ..Default::default()
        },
    )
    .expect("routes");

    assert!(
        joint.mlu_weights_only <= inv_mlu + 1e-9,
        "HeurOSPF beats InverseCapacity"
    );
    assert!(
        joint.mlu <= joint.mlu_weights_only + 1e-9,
        "waypoints never hurt"
    );

    // Everything is still at least the fluid optimum (~1 by normalization).
    assert!(
        joint.mlu >= 0.85,
        "MLU cannot beat the fluid optimum: {}",
        joint.mlu
    );
}

/// Gravity demands route on all three Figure-6 topologies and the joint
/// optimizer improves on the weights-only stage.
#[test]
fn gravity_pipeline_on_fig6_topologies() {
    for name in ["Abilene", "Geant"] {
        let net = by_name(name).expect("embedded");
        let demands = gravity(
            &net,
            &TrafficConfig {
                seed: 7,
                ..Default::default()
            },
        )
        .expect("connected");
        let joint = joint_heur(
            &net,
            &demands,
            &JointHeurConfig {
                ospf: quick_ospf(2),
                ..Default::default()
            },
        )
        .expect("routes");
        assert!(joint.mlu <= joint.mlu_weights_only + 1e-9, "{name}");
        assert!(joint.mlu.is_finite() && joint.mlu > 0.0);
    }
}

/// GreedyWPO vs the exact WPO MILP under the same fixed weights: the MILP
/// is never worse (Figure 5's GreedyWaypoints vs ILP-Waypoints columns).
#[test]
fn greedy_vs_exact_waypoints_on_abilene() {
    let net = abilene();
    let demands = mcf_synthetic(
        &net,
        &TrafficConfig {
            seed: 3,
            flows_per_pair: Some(1),
            ..Default::default()
        },
    )
    .expect("connected");
    let weights = WeightSetting::inverse_capacity(&net);

    let greedy = greedy_wpo(&net, &demands, &weights, &GreedyWpoConfig::default()).expect("routes");
    let greedy_mlu = Router::new(&net, &weights)
        .evaluate(&demands, &greedy)
        .expect("routes")
        .mlu;

    let opts = WpoIlpOptions {
        milp: segrout_lp::MilpOptions {
            node_limit: 5_000,
            time_limit: std::time::Duration::from_secs(15),
            ..Default::default()
        },
        ..Default::default()
    };
    let exact = wpo_ilp(&net, &demands, &weights, &opts).expect("routes");
    assert!(
        exact.mlu <= greedy_mlu + 1e-9,
        "exact {} vs greedy {greedy_mlu}",
        exact.mlu
    );
}

/// The normalization invariant behind every figure: after MCF scaling, the
/// fluid optimum is ~1 and every ECMP-based algorithm sits above it.
#[test]
fn normalization_makes_one_the_floor() {
    let net = by_name("Cost266").expect("embedded");
    let demands = mcf_synthetic(
        &net,
        &TrafficConfig {
            seed: 11,
            ..Default::default()
        },
    )
    .expect("connected");
    let opt = max_concurrent_flow(&net, &demands, 0.05)
        .expect("connected")
        .opt_mlu;
    assert!((opt - 1.0).abs() < 0.15, "normalized optimum ~1, got {opt}");

    let w = heur_ospf(&net, &demands, &quick_ospf(5));
    let mlu = Router::new(&net, &w).mlu(&demands).expect("routes");
    assert!(mlu >= opt - 0.15, "ECMP cannot beat the fluid optimum");
}

/// Waypoint settings produced by the optimizers are always within budget
/// and evaluate identically when re-applied (reproducibility).
#[test]
fn optimizer_outputs_are_reproducible() {
    let net = abilene();
    let demands = mcf_synthetic(
        &net,
        &TrafficConfig {
            seed: 8,
            flows_per_pair: Some(2),
            ..Default::default()
        },
    )
    .expect("connected");
    let cfg = JointHeurConfig {
        ospf: quick_ospf(9),
        ..Default::default()
    };
    let a = joint_heur(&net, &demands, &cfg).expect("routes");
    let b = joint_heur(&net, &demands, &cfg).expect("routes");
    assert_eq!(a.weights.as_slice(), b.weights.as_slice());
    assert!((a.mlu - b.mlu).abs() < 1e-12);
    assert!(a.waypoints.max_used() <= 1);

    // Re-evaluating the returned configuration reproduces the claimed MLU.
    let router = Router::new(&net, &a.weights);
    let again = router.evaluate(&demands, &a.waypoints).expect("routes").mlu;
    assert!((again - a.mlu).abs() < 1e-12);
}

/// The plain-ECMP special case: a joint result with no waypoints must agree
/// with the weights-only evaluation path.
#[test]
fn no_waypoints_matches_weights_only_path() {
    let net = abilene();
    let demands = mcf_synthetic(
        &net,
        &TrafficConfig {
            seed: 21,
            flows_per_pair: Some(1),
            ..Default::default()
        },
    )
    .expect("connected");
    let w = heur_ospf(&net, &demands, &quick_ospf(3));
    let router = Router::new(&net, &w);
    let a = router.mlu(&demands).expect("routes");
    let b = router
        .evaluate(&demands, &WaypointSetting::none(demands.len()))
        .expect("routes")
        .mlu;
    assert_eq!(a, b);
}
