//! Differential suite pinning the edge-disable probe bit-identical to
//! from-scratch re-routing on a copied topology with the failed edges
//! *deleted*.
//!
//! The failure-sweep engine answers every scenario with
//! `IncrementalEvaluator::probe_disable` — a read-only masked repair of the
//! intact base state. Its contract is the same as every differential suite
//! in this repo: **`f64::to_bits` equality, no epsilon**, against the ground
//! truth of physically removing the failed edges, rebuilding the network,
//! and routing from scratch. This file checks, over the paper's
//! TE-Instances 1/3/5 and Germany50:
//!
//! * per-pattern loads / MLU / Φ: disable probe vs a fresh `Router` on the
//!   edge-deleted copy (surviving edges matched through the id remap);
//! * disconnect classification: the probe reports `Unroutable` exactly when
//!   the deleted-topology evaluation does;
//! * the full probe bit-trace is identical across worker-thread counts
//!   1 and 4 and across both Dijkstra engines (bucket queue and heap);
//! * `sweep_failures` reports are bit-stable across the same grid.

use segrout_core::rng::StdRng;
use segrout_core::{
    fortz_phi, sweep_failures, DemandList, EdgeId, FailureSet, IncrementalEvaluator, Network,
    NodeId, Router, ScenarioOutcome, TeError, WaypointSetting, WeightSetting,
};
use segrout_graph::set_heap_only;
use segrout_instances::{instance1, instance3, instance5};
use segrout_topo::by_name;
use std::sync::{Mutex, MutexGuard};

/// Per-scenario bit signature: `(pattern, scaling, Some((mlu_bits, phi_bits)))`
/// for evaluated scenarios, `None` for disconnecting ones.
type ScenarioSig = (usize, usize, Option<(u64, u64)>);

/// The thread-count override and the heap-only engine toggle are both
/// process-global; serialize the tests of this binary.
fn global_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Restores engine dispatch and the thread default even on panic.
struct Restore;
impl Drop for Restore {
    fn drop(&mut self) {
        set_heap_only(false);
        segrout_par::set_threads(0);
    }
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// The covered `(label, network, demands)` cases: the paper's gadget
/// instances with their own single source–target demand (failures here
/// disconnect often, exercising the classification arm) and Germany50 with
/// a seeded many-pair workload.
fn cases() -> Vec<(String, Network, DemandList)> {
    let mut out = Vec::new();
    for (label, inst) in [
        ("instance1(m=8)", instance1(8)),
        ("instance3(m=5)", instance3(5)),
        ("instance5(m=3)", instance5(3)),
    ] {
        out.push((label.to_string(), inst.network, inst.demands));
    }
    let net = by_name("Germany50").expect("embedded");
    let mut rng = StdRng::seed_from_u64(0xfa11);
    let n = net.node_count() as u32;
    let mut demands = DemandList::new();
    for _ in 0..40 {
        let s = rng.gen_range(0..n);
        let t = rng.gen_range(0..n);
        if s != t {
            demands.push(NodeId(s), NodeId(t), f64::from(rng.gen_range(1..=10u32)));
        }
    }
    out.push(("Germany50".to_string(), net, demands));
    out
}

/// Seeded integral weight vector in `[1, 20]` — the optimizer regime, where
/// the engines' bit-identity contract holds exactly.
fn integral_weights(m: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| f64::from(rng.gen_range(1..=20u32)))
        .collect()
}

/// Edge-deleted copy of `net`: the failed edges are physically absent, not
/// masked. Returns the copy plus the surviving old edge ids in order (the
/// old→new remap), or `None` when no edge survives.
fn deleted_copy(net: &Network, dead: &[EdgeId]) -> Option<(Network, Vec<EdgeId>)> {
    let mut b = Network::builder(net.node_count());
    let mut kept = Vec::new();
    for (e, u, v) in net.graph().edges() {
        if !dead.contains(&e) {
            b.link(u, v, net.capacities()[e.index()]);
            kept.push(e);
        }
    }
    if kept.is_empty() {
        return None;
    }
    Some((b.build().ok()?, kept))
}

/// Checks one pattern: the disable probe against the edge-deleted scratch
/// evaluation. Returns the probe's bit signature for cross-grid comparison.
fn check_pattern(
    label: &str,
    net: &Network,
    ev: &IncrementalEvaluator<'_>,
    weights: &[f64],
    demands: &DemandList,
    dead: &[EdgeId],
) -> (Vec<u64>, u64, u64, bool) {
    let wp = WaypointSetting::none(demands.len());
    let scratch = deleted_copy(net, dead).and_then(|(net2, kept)| {
        let w2: Vec<f64> = kept.iter().map(|e| weights[e.index()]).collect();
        let ws = WeightSetting::new(&net2, w2).expect("weights in range");
        Router::new(&net2, &ws)
            .evaluate(demands, &wp)
            .ok()
            .map(|rep| (net2, kept, rep))
    });
    match (ev.probe_disable(dead), scratch) {
        (Ok(probe), Some((net2, kept, fresh))) => {
            assert_eq!(
                probe.mlu.to_bits(),
                fresh.mlu.to_bits(),
                "{label} {dead:?}: probe MLU {} != deleted-topology MLU {}",
                probe.mlu,
                fresh.mlu
            );
            for (new_idx, &old) in kept.iter().enumerate() {
                assert_eq!(
                    probe.loads[old.index()].to_bits(),
                    fresh.loads[new_idx].to_bits(),
                    "{label} {dead:?}: load diverged on surviving edge {}",
                    old.index()
                );
            }
            for &e in dead {
                assert_eq!(
                    probe.loads[e.index()],
                    0.0,
                    "{label} {dead:?}: dead edge {} carries load",
                    e.index()
                );
            }
            let phi = fortz_phi(&fresh.loads, net2.capacities());
            assert_eq!(
                probe.phi.to_bits(),
                phi.to_bits(),
                "{label} {dead:?}: probe Φ {} != deleted-topology Φ {phi}",
                probe.phi
            );
            (
                bits(&probe.loads),
                probe.mlu.to_bits(),
                probe.phi.to_bits(),
                true,
            )
        }
        (Err(TeError::Unroutable { src, dst }), None | Some(_)) => {
            // The probe says disconnected: the deleted topology must agree
            // (either it cannot be built at all or routing fails on it).
            let agrees = deleted_copy(net, dead).is_none_or(|(net2, kept)| {
                let w2: Vec<f64> = kept.iter().map(|e| weights[e.index()]).collect();
                let ws = WeightSetting::new(&net2, w2).expect("weights in range");
                matches!(
                    Router::new(&net2, &ws).evaluate(demands, &wp),
                    Err(TeError::Unroutable { .. })
                )
            });
            assert!(
                agrees,
                "{label} {dead:?}: probe reports {src:?}->{dst:?} severed but \
                 the deleted topology routes"
            );
            (Vec::new(), 0, 0, false)
        }
        (Ok(_), None) => panic!("{label} {dead:?}: probe routed with zero surviving edges"),
        (Err(e), _) => panic!("{label} {dead:?}: unexpected probe error {e}"),
    }
}

#[test]
fn disable_probes_match_deleted_topology_rerouting() {
    let _guard = global_lock();
    let _restore = Restore;
    set_heap_only(false);
    for (label, net, demands) in cases() {
        let weights = integral_weights(net.edge_count(), 0xd15a + net.edge_count() as u64);
        let ws = WeightSetting::new(&net, weights.clone()).expect("weights in range");
        let wp = WaypointSetting::none(demands.len());
        let ev = IncrementalEvaluator::new(&net, &ws, &demands, &wp).expect("intact routable");
        let set = FailureSet::enumerate(&net, false);
        let mut evaluated = 0usize;
        for pattern in set.patterns() {
            let (_, _, _, routed) =
                check_pattern(&label, &net, &ev, &weights, &demands, &pattern.dead);
            evaluated += usize::from(routed);
        }
        assert!(
            evaluated > 0,
            "{label}: every single-link failure disconnected — the evaluated \
             arm of the differential never ran"
        );
    }
}

#[test]
fn probe_traces_identical_across_threads_and_engines() {
    let _guard = global_lock();
    let _restore = Restore;
    let (label, net, demands) = cases().pop().expect("Germany50 last");
    let weights = integral_weights(net.edge_count(), 0x6e1d + net.edge_count() as u64);
    let ws = WeightSetting::new(&net, weights.clone()).expect("weights in range");
    let wp = WaypointSetting::none(demands.len());
    let set = FailureSet::enumerate(&net, false);

    let mut traces = Vec::new();
    for threads in [1usize, 4] {
        for heap in [false, true] {
            segrout_par::set_threads(threads);
            set_heap_only(heap);
            let ev = IncrementalEvaluator::new(&net, &ws, &demands, &wp).expect("intact routable");
            let trace: Vec<_> = set
                .patterns()
                .iter()
                .map(|p| check_pattern(&label, &net, &ev, &weights, &demands, &p.dead))
                .collect();
            traces.push(trace);
        }
    }
    set_heap_only(false);
    segrout_par::set_threads(0);
    for (i, t) in traces.iter().enumerate().skip(1) {
        assert_eq!(
            &traces[0], t,
            "trace {i} diverged (thread-count × engine grid must be bit-identical)"
        );
    }
}

#[test]
fn sweep_reports_bit_stable_across_threads_and_engines() {
    let _guard = global_lock();
    let _restore = Restore;
    let (_, net, demands) = cases().pop().expect("Germany50 last");
    let ws = WeightSetting::new(
        &net,
        integral_weights(net.edge_count(), 0x5eeb + net.edge_count() as u64),
    )
    .expect("weights in range");
    let wp = WaypointSetting::none(demands.len());
    let set = FailureSet::enumerate(&net, false);

    let mut signatures = Vec::new();
    for threads in [1usize, 4] {
        for heap in [false, true] {
            segrout_par::set_threads(threads);
            set_heap_only(heap);
            let rep = sweep_failures(&net, &ws, &demands, &wp, &set, &[0.8, 1.0, 1.2])
                .expect("intact routable");
            let sig: Vec<ScenarioSig> = rep
                .results
                .iter()
                .map(|r| {
                    let key = match r.outcome {
                        ScenarioOutcome::Evaluated { mlu, phi, .. } => {
                            Some((mlu.to_bits(), phi.to_bits()))
                        }
                        ScenarioOutcome::Disconnected { .. } => None,
                    };
                    (r.pattern, r.scaling, key)
                })
                .collect();
            let worst = rep.worst.as_ref().map(|c| {
                (
                    c.pattern,
                    c.scaling,
                    c.mlu.to_bits(),
                    c.bottleneck,
                    c.bottleneck_load.to_bits(),
                )
            });
            signatures.push((sig, worst, rep.evaluated, rep.disconnects));
        }
    }
    set_heap_only(false);
    segrout_par::set_threads(0);
    for (i, s) in signatures.iter().enumerate().skip(1) {
        assert_eq!(
            &signatures[0], s,
            "sweep report {i} diverged across the thread-count × engine grid"
        );
    }
}
