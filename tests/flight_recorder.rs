//! Flight-recorder contract tests: the convergence trace of a HeurOSPF
//! descent on Germany50 is monotone in the recorded best objective, and
//! enabling tracing/profiling never changes optimizer output — the trace
//! layer observes the search, it must not participate in it.

use segrout_algos::{heur_ospf, HeurOspfConfig};
use segrout_core::WeightSetting;
use segrout_topo::by_name;
use segrout_traffic::{mcf_synthetic, TrafficConfig};
use std::sync::{Mutex, MutexGuard};

/// The trace buffer and profiler are process-global; serialize every test
/// that toggles them.
fn recorder_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn quick_ospf(seed: u64) -> HeurOspfConfig {
    HeurOspfConfig {
        seed,
        restarts: 1,
        max_passes: 4,
        ..Default::default()
    }
}

fn weight_bits(w: &WeightSetting) -> Vec<u64> {
    w.as_slice().iter().map(|x| x.to_bits()).collect()
}

/// Traced HeurOSPF on Germany50: the recorded best-MLU curve is monotone
/// non-increasing, events are well-formed, and the final traced value
/// matches the returned weight setting's quality.
#[test]
fn germany50_trace_is_monotone_and_well_formed() {
    let _guard = recorder_lock();
    let net = by_name("Germany50").expect("embedded topology");
    let demands = mcf_synthetic(
        &net,
        &TrafficConfig {
            seed: 11,
            ..Default::default()
        },
    )
    .expect("connected");

    segrout_obs::reset_trace();
    segrout_obs::set_trace_enabled(true);
    let _w = heur_ospf(&net, &demands, &quick_ospf(3));
    segrout_obs::set_trace_enabled(false);
    let pts = segrout_obs::take_trace();

    assert!(pts.len() >= 3, "expected start + accepts + done");
    assert_eq!(pts.first().map(|p| p.event), Some("heurospf.start"));
    assert_eq!(pts.last().map(|p| p.event), Some("heurospf.done"));

    // Sequence numbers dense, timestamps and iteration counts ordered.
    for (i, p) in pts.iter().enumerate() {
        assert_eq!(p.seq, i as u64);
    }
    for w in pts.windows(2) {
        assert!(w[0].t_us <= w[1].t_us, "timestamps regressed");
        assert!(w[0].iter <= w[1].iter, "iteration counter regressed");
    }

    // The recorded incumbent is monotone non-increasing in (phi, mlu)
    // lexicographic order — every trace point is a strict improvement.
    for w in pts.windows(2) {
        let (p0, p1) = (&w[0], &w[1]);
        assert!(
            p1.phi < p0.phi + 1e-12 || (p1.phi <= p0.phi + 1e-12 && p1.mlu <= p0.mlu + 1e-12),
            "best objective regressed between {:?} and {:?}",
            p0,
            p1
        );
    }
    let done = pts.last().expect("non-empty");
    let best = pts.iter().map(|p| p.mlu).fold(f64::INFINITY, f64::min);
    assert!(
        (done.mlu - best).abs() < 1e-12,
        "final trace point must carry the best recorded MLU"
    );
}

/// Bit-identity: the optimizer returns the same weights whether the flight
/// recorder is off, tracing, or tracing + profiling.
#[test]
fn tracing_does_not_change_optimizer_output() {
    let _guard = recorder_lock();
    let net = by_name("Germany50").expect("embedded topology");
    let demands = mcf_synthetic(
        &net,
        &TrafficConfig {
            seed: 5,
            ..Default::default()
        },
    )
    .expect("connected");
    // One descent is enough for the identity check (restart coverage for
    // the trace layer lives in the monotonicity test above).
    let cfg = HeurOspfConfig {
        restarts: 0,
        ..quick_ospf(7)
    };

    segrout_obs::set_trace_enabled(false);
    segrout_obs::set_profiling(false);
    let plain = heur_ospf(&net, &demands, &cfg);

    segrout_obs::reset_trace();
    segrout_obs::set_trace_enabled(true);
    let traced = heur_ospf(&net, &demands, &cfg);
    assert!(segrout_obs::trace_len() > 0, "tracing produced no points");

    segrout_obs::reset_profile();
    segrout_obs::set_profiling(true);
    let profiled = heur_ospf(&net, &demands, &cfg);

    segrout_obs::set_trace_enabled(false);
    segrout_obs::set_profiling(false);
    segrout_obs::reset_trace();
    segrout_obs::reset_profile();

    assert_eq!(
        weight_bits(&plain),
        weight_bits(&traced),
        "tracing changed the optimizer result"
    );
    assert_eq!(
        weight_bits(&plain),
        weight_bits(&profiled),
        "profiling changed the optimizer result"
    );
}
