//! Differential suite pinning the bucket-queue (Dial) Dijkstra engine
//! bit-identical to the `BinaryHeap` oracle.
//!
//! The hot-loop refactor swapped the evaluator's shortest-path engine for a
//! monotone bucket queue over the integer weight domain and the SP-DAG
//! storage for flat CSR slabs. The contract is unchanged from every other
//! differential suite in this repo: **`f64::to_bits` equality, no epsilon**.
//! This file checks, over the paper's TE-Instances 1/3/5, seeded random
//! strongly-connected topologies and Germany50:
//!
//! * distance vectors: bucket queue vs heap oracle, every target;
//! * full `SpDag` structure (CSR offsets, edge slab, order) built through
//!   engine dispatch vs forced-heap scratch;
//! * dynamic-repair paths (`update_shortest_path_dag`) against forced-heap
//!   from-scratch rebuilds over random single-edge weight-change sequences;
//! * the whole evaluator stack (`Router` + `IncrementalEvaluator`) with the
//!   bucket queue enabled vs disabled, at 1 and 4 worker threads.

use segrout_core::rng::StdRng;
use segrout_core::{
    fortz_phi, DemandList, EdgeId, IncrementalEvaluator, Network, NodeId, Router, WaypointSetting,
    WeightSetting,
};
use segrout_graph::{
    set_heap_only, shortest_path_dag, single_target_distances, single_target_distances_heap,
    update_shortest_path_dag, SpDag, SpDagUpdate,
};
use segrout_instances::{instance1, instance3, instance5};
use segrout_topo::{by_name, random_connected};
use std::sync::{Mutex, MutexGuard};

/// The thread-count override and the heap-only engine toggle are both
/// process-global; serialize the tests of this binary.
fn global_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Restores engine dispatch and the thread default even on panic.
struct Restore;
impl Drop for Restore {
    fn drop(&mut self) {
        set_heap_only(false);
        segrout_par::set_threads(0);
    }
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Full structural bit-equality of two DAGs.
fn assert_same_dag(a: &SpDag, b: &SpDag, ctx: &str) {
    assert_eq!(bits(&a.dist), bits(&b.dist), "{ctx}: dist diverged");
    assert_eq!(a.edge_on_dag, b.edge_on_dag, "{ctx}: edge set diverged");
    assert_eq!(a.dag_start, b.dag_start, "{ctx}: CSR offsets diverged");
    assert_eq!(a.dag_edges, b.dag_edges, "{ctx}: CSR edge slab diverged");
    assert_eq!(a.order, b.order, "{ctx}: topological order diverged");
}

/// The covered networks (instances, seeded random, one SNDLib backbone).
fn cases() -> Vec<(String, Network)> {
    let mut out: Vec<(String, Network)> = vec![
        ("instance1(m=8)".into(), instance1(8).network),
        ("instance3(m=5)".into(), instance3(5).network),
        ("instance5(m=3)".into(), instance5(3).network),
        ("Germany50".into(), by_name("Germany50").expect("embedded")),
    ];
    for seed in [23u64, 37, 53] {
        out.push((
            format!("random(seed={seed})"),
            random_connected(12, 26, seed),
        ));
    }
    out
}

/// Seeded integral weight vector in `[1, 20]` — the optimizer regime.
fn integral_weights(m: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| f64::from(rng.gen_range(1..=20u32)))
        .collect()
}

#[test]
fn distances_and_dags_bit_identical_across_engines() {
    let _guard = global_lock();
    let _restore = Restore;
    set_heap_only(false);
    for (label, net) in cases() {
        let g = net.graph();
        let w = integral_weights(net.edge_count(), 0xb0c3 + net.edge_count() as u64);
        for t in 0..net.node_count() {
            let target = NodeId(t as u32);
            let dial = single_target_distances(g, &w, target);
            let heap = single_target_distances_heap(g, &w, target);
            assert_eq!(bits(&dial), bits(&heap), "{label} target {target:?}");

            let dag_dispatch = shortest_path_dag(g, &w, target);
            set_heap_only(true);
            let dag_heap = shortest_path_dag(g, &w, target);
            set_heap_only(false);
            assert_same_dag(
                &dag_dispatch,
                &dag_heap,
                &format!("{label} target {target:?}"),
            );
        }
    }
}

#[test]
fn update_paths_match_forced_heap_scratch() {
    let _guard = global_lock();
    let _restore = Restore;
    set_heap_only(false);
    for (label, net) in cases() {
        let g = net.graph();
        let m = net.edge_count();
        let mut rng = StdRng::seed_from_u64(0x0d1a + m as u64);
        let mut w = integral_weights(m, 0x5eed + m as u64);
        // A handful of fixed targets tracked through a weight-change walk.
        let targets: Vec<NodeId> = (0..net.node_count().min(6))
            .map(|i| NodeId(i as u32))
            .collect();
        let mut dags: Vec<SpDag> = targets
            .iter()
            .map(|&t| shortest_path_dag(g, &w, t))
            .collect();
        for step in 0..20 {
            let e = EdgeId(rng.gen_range(0..m as u32));
            let old_w = w[e.index()];
            w[e.index()] = f64::from(rng.gen_range(1..=20u32));
            for (dag, &t) in dags.iter_mut().zip(&targets) {
                // Repair with bucket dispatch live (rebuild fallbacks use it).
                let repaired = match update_shortest_path_dag(g, &w, dag, e, old_w, 8) {
                    SpDagUpdate::Unchanged => dag.clone(),
                    SpDagUpdate::Repaired(d, _) | SpDagUpdate::Rebuilt(d) => d,
                };
                // Oracle: forced-heap from-scratch rebuild of the same state.
                set_heap_only(true);
                let scratch = shortest_path_dag(g, &w, t);
                set_heap_only(false);
                assert_same_dag(
                    &repaired,
                    &scratch,
                    &format!("{label} step {step} target {t:?}"),
                );
                *dag = repaired;
            }
        }
    }
}

/// One probe/commit walk through the incremental evaluator; returns the
/// per-step `(loads, phi, mlu)` bit trace.
fn evaluator_trace(net: &Network, demands: &DemandList, seed: u64) -> Vec<(Vec<u64>, u64, u64)> {
    let m = net.edge_count();
    let mut rng = StdRng::seed_from_u64(seed);
    let weights: Vec<f64> = (0..m)
        .map(|_| f64::from(rng.gen_range(1..=20u32)))
        .collect();
    let ws = WeightSetting::new(net, weights).expect("weights in range");
    let wp = WaypointSetting::none(demands.len());
    let mut ev = IncrementalEvaluator::new(net, &ws, demands, &wp).expect("routable");
    let mut trace = Vec::new();
    for _ in 0..16 {
        let e = EdgeId(rng.gen_range(0..m as u32));
        let new_w = f64::from(rng.gen_range(1..=20u32));
        let probe = ev.probe(e, new_w).expect("probe routable");
        trace.push((bits(&probe.loads), probe.phi.to_bits(), probe.mlu.to_bits()));
        ev.commit(probe);
    }
    // Close the loop against the plain Router as well.
    let w_now = WeightSetting::new(net, ev.weights().to_vec()).expect("in range");
    let report = Router::new(net, &w_now)
        .evaluate(demands, &wp)
        .expect("routable");
    let phi = fortz_phi(&report.loads, net.capacities());
    assert_eq!(
        bits(&report.loads),
        bits(ev.loads()),
        "router/evaluator split"
    );
    trace.push((bits(&report.loads), phi.to_bits(), report.mlu.to_bits()));
    trace
}

#[test]
fn evaluator_stack_identical_with_either_engine_at_1_and_4_threads() {
    let _guard = global_lock();
    let _restore = Restore;
    let net = by_name("Germany50").expect("embedded");
    let mut rng = StdRng::seed_from_u64(0x9e44);
    let n = net.node_count() as u32;
    let mut demands = DemandList::new();
    for _ in 0..40 {
        let s = rng.gen_range(0..n);
        let t = rng.gen_range(0..n);
        if s != t {
            demands.push(NodeId(s), NodeId(t), f64::from(rng.gen_range(1..=10u32)));
        }
    }
    let mut traces = Vec::new();
    for threads in [1usize, 4] {
        for heap in [false, true] {
            segrout_par::set_threads(threads);
            set_heap_only(heap);
            traces.push(evaluator_trace(&net, &demands, 0xfacade));
        }
    }
    set_heap_only(false);
    segrout_par::set_threads(0);
    for (i, t) in traces.iter().enumerate().skip(1) {
        assert_eq!(
            &traces[0], t,
            "trace {i} diverged (thread-count × engine grid must be bit-identical)"
        );
    }
}
