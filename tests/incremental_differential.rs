//! Differential harness for the incremental evaluation engine.
//!
//! The [`IncrementalEvaluator`] contract is *bit-identity*: probing a
//! single-edge weight change and committing it must produce exactly the
//! per-link loads, Φ and MLU a from-scratch [`Router`] evaluation of the
//! patched weights produces — `f64::to_bits` equality, no epsilon — at any
//! thread count. This file drives random single-edge integer weight-change
//! sequences over the paper's worst-case TE-Instances 1, 3 and 5 plus
//! seeded random strongly-connected topologies, checking every probe and
//! every committed state against a fresh evaluation, under both 1 worker
//! (pure serial path) and 4 workers.
//!
//! It also pins the headline perf claim: a HeurOSPF descent on Germany50
//! must perform at least 5× fewer full per-destination DAG recomputations
//! (`ecmp.recomputes`) through the incremental engine than through the
//! from-scratch scorer.

use segrout_algos::{heur_ospf, HeurOspfConfig};
use segrout_core::rng::StdRng;
use segrout_core::{
    fortz_phi, DemandList, EdgeId, IncrementalEvaluator, Network, NodeId, Router, WaypointSetting,
    WeightSetting,
};
use segrout_instances::{instance1, instance3, instance5};
use segrout_topo::{by_name, random_connected};
use std::sync::{Mutex, MutexGuard};

/// Thread-count override and the `ecmp.recomputes` counter are both
/// process-global; serialize the tests of this binary so they don't observe
/// each other's traffic.
fn global_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// From-scratch evaluation of `weights`: (load bits, Φ bits, MLU bits).
fn scratch_bits(
    net: &Network,
    demands: &DemandList,
    waypoints: &WaypointSetting,
    weights: &[f64],
) -> (Vec<u64>, u64, u64) {
    let w = WeightSetting::new(net, weights.to_vec()).expect("weights in range");
    let report = Router::new(net, &w)
        .evaluate(demands, waypoints)
        .expect("strongly connected cases route");
    let phi = fortz_phi(&report.loads, net.capacities());
    let loads = report.loads.iter().map(|x| x.to_bits()).collect();
    (loads, phi.to_bits(), report.mlu.to_bits())
}

fn bits(loads: &[f64]) -> Vec<u64> {
    loads.iter().map(|x| x.to_bits()).collect()
}

/// Drives one random weight-change sequence, asserting bit-identity of every
/// probe and every committed state against from-scratch evaluation. Returns
/// the per-step trace so callers can diff thread counts.
fn run_sequence(
    label: &str,
    net: &Network,
    demands: &DemandList,
    waypoints: &WaypointSetting,
    seed: u64,
    steps: usize,
) -> Vec<(Vec<u64>, u64, u64, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = net.edge_count();
    // Integral starting weights: the regime every optimizer emits, and the
    // one in which shortest-path distance ties are exactly representable.
    let mut weights: Vec<f64> = (0..m)
        .map(|_| f64::from(rng.gen_range(1..=20u32)))
        .collect();
    let ws = WeightSetting::new(net, weights.clone()).expect("weights in range");
    let mut ev =
        IncrementalEvaluator::new(net, &ws, demands, waypoints).expect("routable workload");

    let (l0, p0, u0) = scratch_bits(net, demands, waypoints, &weights);
    assert_eq!(bits(ev.loads()), l0, "{label}: construction loads");
    assert_eq!(ev.phi().to_bits(), p0, "{label}: construction phi");
    assert_eq!(ev.mlu().to_bits(), u0, "{label}: construction mlu");

    let mut trace = Vec::with_capacity(steps);
    for step in 0..steps {
        let e = rng.gen_range(0..m as u32);
        let new_w = f64::from(rng.gen_range(1..=20u32));
        let probe = ev.probe(EdgeId(e), new_w).expect("probe routable");

        weights[e as usize] = new_w;
        let (sl, sp, su) = scratch_bits(net, demands, waypoints, &weights);
        assert_eq!(bits(&probe.loads), sl, "{label} step {step}: probe loads");
        assert_eq!(probe.phi.to_bits(), sp, "{label} step {step}: probe phi");
        assert_eq!(probe.mlu.to_bits(), su, "{label} step {step}: probe mlu");
        trace.push((sl.clone(), sp, su, probe.dirty_count));

        ev.commit(probe);
        assert_eq!(bits(ev.loads()), sl, "{label} step {step}: committed loads");
        assert_eq!(ev.phi().to_bits(), sp, "{label} step {step}: committed phi");
        assert_eq!(ev.mlu().to_bits(), su, "{label} step {step}: committed mlu");
    }
    trace
}

/// The covered cases: (label, network, demands).
fn cases() -> Vec<(String, Network, DemandList)> {
    let mut out = Vec::new();
    for (label, inst) in [
        ("instance1(m=8)", instance1(8)),
        ("instance3(m=5)", instance3(5)),
        ("instance5(m=3)", instance5(3)),
    ] {
        out.push((label.to_string(), inst.network, inst.demands));
    }
    for seed in [17u64, 29, 41] {
        let net = random_connected(10, 20, seed);
        let mut rng = StdRng::seed_from_u64(seed * 6151);
        let n = net.node_count() as u32;
        let mut demands = DemandList::new();
        for _ in 0..12 {
            let s = rng.gen_range(0..n);
            let t = rng.gen_range(0..n);
            if s != t {
                demands.push(NodeId(s), NodeId(t), f64::from(rng.gen_range(1..=10u32)));
            }
        }
        out.push((format!("random(seed={seed})"), net, demands));
    }
    out
}

#[test]
fn incremental_matches_scratch_at_1_and_4_threads() {
    let _guard = global_lock();
    for (label, net, demands) in cases() {
        let wp = WaypointSetting::none(demands.len());
        let mut traces = Vec::new();
        for t in [1usize, 4] {
            segrout_par::set_threads(t);
            traces.push(run_sequence(
                &format!("{label} t={t}"),
                &net,
                &demands,
                &wp,
                0xd1ff + 31 * net.edge_count() as u64,
                24,
            ));
        }
        segrout_par::set_threads(0);
        assert_eq!(
            traces[0], traces[1],
            "{label}: 4-thread sequence diverged from serial"
        );
    }
}

#[test]
fn waypointed_sequences_match_scratch() {
    let _guard = global_lock();
    segrout_par::set_threads(1);
    for (label, net, demands) in cases() {
        // Route every demand through a fixed detour node where legal: the
        // segment decomposition then exercises multi-segment destinations.
        let mut wp = WaypointSetting::none(demands.len());
        for i in 0..demands.len() {
            let d = demands[i];
            let via = NodeId((d.src.0 + 1) % net.node_count() as u32);
            if via != d.src && via != d.dst {
                wp.set(i, vec![via]);
            }
        }
        run_sequence(
            &format!("{label} waypointed"),
            &net,
            &demands,
            &wp,
            0xaa7,
            16,
        );
    }
    segrout_par::set_threads(0);
}

/// Germany50 HeurOSPF descent: identical trajectories, ≥5× fewer full DAG
/// recomputations through the incremental engine. (The container may be
/// single-core; this measures work counts, not wall time.)
#[test]
fn heur_ospf_recomputes_drop_at_least_5x_on_germany50() {
    let _guard = global_lock();
    segrout_par::set_threads(1);
    let net = by_name("Germany50").expect("embedded topology");
    let mut rng = StdRng::seed_from_u64(0x6e50);
    let n = net.node_count() as u32;
    let mut demands = DemandList::new();
    for _ in 0..30 {
        let s = rng.gen_range(0..n);
        let t = rng.gen_range(0..n);
        if s != t {
            demands.push(NodeId(s), NodeId(t), f64::from(rng.gen_range(1..=10u32)));
        }
    }
    let cfg = HeurOspfConfig {
        restarts: 0,
        max_passes: 2,
        seed: 0xfeed,
        ..Default::default()
    };
    let recomputes = segrout_obs::counter("ecmp.recomputes");

    let before = recomputes.get();
    let scratch = heur_ospf(
        &net,
        &demands,
        &HeurOspfConfig {
            use_incremental: false,
            ..cfg.clone()
        },
    );
    let scratch_recomputes = recomputes.get() - before;

    let before = recomputes.get();
    let incremental = heur_ospf(
        &net,
        &demands,
        &HeurOspfConfig {
            use_incremental: true,
            ..cfg
        },
    );
    let incremental_recomputes = recomputes.get() - before;
    segrout_par::set_threads(0);

    assert_eq!(
        scratch.as_slice(),
        incremental.as_slice(),
        "scorers must trace the same descent"
    );
    assert!(
        scratch_recomputes >= 5 * incremental_recomputes.max(1),
        "expected a >=5x recompute drop: scratch={scratch_recomputes} \
         incremental={incremental_recomputes}"
    );
}
