//! Validation of the paper's §3 lemmas with *exact* optimization (MILPs)
//! on small instances — where greedy heuristics would only give one-sided
//! bounds.

use segrout_algos::lwo_apx;
use segrout_core::{Router, WeightSetting};
use segrout_instances::{
    instance1, instance1::arbitrary_adversarial_weights, instance1::lwo_optimal_weights, instance2,
    instance3, instance4,
};
use segrout_lp::{MilpOptions, MilpStatus};
use segrout_milp::{wpo_ilp, WpoIlpOptions};
use std::time::Duration;

fn exact_opts() -> WpoIlpOptions {
    WpoIlpOptions {
        milp: MilpOptions {
            node_limit: 50_000,
            time_limit: Duration::from_secs(60),
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Lemma 3.7 (unit weights): the *optimal* single-waypoint WPO on
/// TE-Instance 1 is at least (n-1)/3.
#[test]
fn lemma_3_7_unit_weights_exact() {
    let m = 6;
    let inst = instance1(m);
    let unit = WeightSetting::unit(&inst.network);
    let r = wpo_ilp(&inst.network, &inst.demands, &unit, &exact_opts()).expect("routes");
    assert_eq!(
        r.status,
        MilpStatus::Optimal,
        "instance small enough for exactness"
    );
    let bound = m as f64 / 3.0;
    assert!(
        r.mlu >= bound - 1e-6,
        "exact WPO {} must be >= m/3 = {bound}",
        r.mlu
    );
}

/// Lemma 3.7 (arbitrary adversarial weights): every waypoint choice routes
/// through (s, t), so exact WPO equals m = n - 1.
#[test]
fn lemma_3_7_adversarial_weights_exact() {
    let m = 5;
    let inst = instance1(m);
    let w = arbitrary_adversarial_weights(&inst);
    let r = wpo_ilp(&inst.network, &inst.demands, &w, &exact_opts()).expect("routes");
    assert_eq!(r.status, MilpStatus::Optimal);
    assert!(
        (r.mlu - m as f64).abs() < 1e-6,
        "all flow crosses (s,t): WPO = m, got {}",
        r.mlu
    );
}

/// Lemma 3.7 (optimal LWO weights): exact WPO stays Ω(n) — around m/3,
/// using only the waypoints v2/v3 and the direct route.
#[test]
fn lemma_3_7_optimal_weights_exact() {
    let m = 6;
    let inst = instance1(m);
    let w = lwo_optimal_weights(&inst);
    let r = wpo_ilp(&inst.network, &inst.demands, &w, &exact_opts()).expect("routes");
    assert_eq!(r.status, MilpStatus::Optimal);
    assert!(
        r.mlu >= m as f64 / 3.0 - 1e-6,
        "exact WPO {} under optimal weights must be >= m/3",
        r.mlu
    );
    // And strictly worse than Joint = 1: the gap R_WPO is real.
    assert!(r.mlu > 1.5);
}

/// Theorem 3.4 assembled from exact parts on one instance: R* >= (n-1)/3.
#[test]
fn theorem_3_4_te_gap_exact() {
    let m = 5;
    let inst = instance1(m);
    let joint = Router::new(&inst.network, &inst.joint_weights)
        .evaluate(&inst.demands, &inst.joint_waypoints)
        .expect("routes")
        .mlu;
    assert!((joint - 1.0).abs() < 1e-9);

    // R_LWO: the best even-split weight setting yields m/2 (Lemma 3.6).
    let lwo = Router::new(&inst.network, &lwo_optimal_weights(&inst))
        .mlu(&inst.demands)
        .expect("routes");
    let r_lwo = lwo / joint;

    // R_WPO under unit and LWO-optimal weights, exactly. (The inverse-of-
    // capacities case needs the transformed instance I'_1 — Lemma 3.7
    // builds it precisely because on the plain Instance 1, 1/c weights let
    // waypoints pin every demand and the WPO gap vanishes; see the
    // dedicated test below.)
    let mut r_wpo = f64::INFINITY;
    for w in [
        WeightSetting::unit(&inst.network),
        lwo_optimal_weights(&inst),
    ] {
        let r = wpo_ilp(&inst.network, &inst.demands, &w, &exact_opts()).expect("routes");
        r_wpo = r_wpo.min(r.mlu / joint);
    }

    let r_star = r_lwo.min(r_wpo);
    assert!(
        r_star >= (m as f64) / 3.0 - 1e-6,
        "TE gap {r_star} below the Theorem 3.4 bound"
    );
}

/// Lemma 3.7 (inverse of capacities) on the transformed instance I'_1.
///
/// The paper argues every waypointed path to a chain node v_i crosses
/// (s, t) and concludes WPO = m. Our exact solver shows the bound is
/// actually m/2: a waypoint placed on a *replacement-path* node u_j (which
/// the paper's argument does not consider) pins a demand onto the
/// unit-capacity detour s → u_j → z_j → v3 → t, and splitting the load
/// between (s, t) and (v3, t) halves the MLU. The lemma's conclusion —
/// WPO ∈ Ω(n) while Joint = 1 — survives unchanged with constant 1/2.
#[test]
fn lemma_3_7_inverse_capacity_exact_on_variant() {
    let m = 4;
    let (net, demands, _s, _t) = segrout_instances::instance1_invcap_variant(m);
    let w = WeightSetting::inverse_capacity(&net);
    let r = wpo_ilp(&net, &demands, &w, &exact_opts()).expect("routes");
    assert_eq!(r.status, MilpStatus::Optimal);
    assert!(
        (r.mlu - m as f64 / 2.0).abs() < 1e-6,
        "exact WPO on I'_1 is m/2 = {}, got {}",
        m as f64 / 2.0,
        r.mlu
    );
}

/// On the *plain* Instance 1 the inverse-capacity weights do admit perfect
/// waypointing (the observation that motivates the paper's I'_1
/// transformation): exact WPO = 1.
#[test]
fn inverse_capacity_on_plain_instance1_has_no_gap() {
    let m = 5;
    let inst = instance1(m);
    let w = WeightSetting::inverse_capacity(&inst.network);
    let r = wpo_ilp(&inst.network, &inst.demands, &w, &exact_opts()).expect("routes");
    assert!((r.mlu - 1.0).abs() < 1e-6, "got {}", r.mlu);
}

/// Lemma 3.9/3.10 via LWO-APX: on Instance 2 the best even-split flow is a
/// harmonic prefix of value exactly 1 — so LWO-APX's pruned DAG must keep a
/// prefix of the parallel paths.
#[test]
fn lemma_3_9_prefix_structure() {
    let m = 9;
    let inst = instance2(m);
    let r = lwo_apx(&inst.network, inst.source, inst.target).expect("routes");
    assert!((r.es_flow_value - 1.0).abs() < 1e-9);
    // The kept paths must form a prefix: if path j is kept, so is j-1
    // (edges are laid out pairwise per path: 2j, 2j+1).
    let kept: Vec<bool> = (0..m)
        .map(|j| r.dag_mask[2 * j] && r.dag_mask[2 * j + 1])
        .collect();
    let first_gap = kept.iter().position(|&k| !k).unwrap_or(m);
    assert!(
        kept[first_gap..].iter().all(|&k| !k),
        "kept paths {kept:?} are not a prefix"
    );
    assert!(first_gap >= 1, "at least the widest path is kept");
}

/// Lemma 3.12 via LWO-APX on Instance 3: the best even-split flow from s
/// is exactly 2 units.
#[test]
fn lemma_3_12_es_flow_is_two() {
    for m in [4usize, 6] {
        let inst = instance3(m);
        let r = lwo_apx(&inst.network, inst.source, inst.target).expect("routes");
        assert!(
            (r.es_flow_value - 2.0).abs() < 1e-9,
            "m={m}: ES-flow should be 2, got {}",
            r.es_flow_value
        );
    }
}

/// Instance 4's thin-layer capacities: total bipartite capacity equals
/// m * H_m = D, and Joint saturates every thin link exactly.
#[test]
fn instance4_thin_layer_saturation() {
    let m = 5;
    let inst = instance4(m);
    let router = Router::new(&inst.network, &inst.joint_weights);
    let report = router
        .evaluate(&inst.demands, &inst.joint_waypoints)
        .expect("routes");
    // Every downward thin link (v_i -> w_j) carries exactly its capacity.
    let g = inst.network.graph();
    let mut saturated = 0;
    for (e, u, v) in g.edges() {
        let upper = (u.0 as usize) < m;
        let lower_dst = (v.0 as usize) >= m;
        if upper && lower_dst {
            let util = report.loads[e.index()] / inst.network.capacities()[e.index()];
            assert!(util <= 1.0 + 1e-9);
            if (util - 1.0).abs() < 1e-9 {
                saturated += 1;
            }
        }
    }
    assert_eq!(saturated, m * m, "all m^2 thin links saturated");
}
