//! Differential determinism harness for the parallel execution layer.
//!
//! The `segrout-par` contract is that thread count is a pure performance
//! knob: HeurOSPF weight vectors, GreedyWPO waypoint selections, and
//! JOINT-Heur results must be **bit-identical** under 1, 2 and 8 threads.
//! One thread bypasses the pool entirely (pure inline execution), so the
//! serial path is the reference each parallel run is diffed against.
//!
//! Covered inputs: the paper's worst-case TE-Instances 1, 3 and 5, plus
//! three seeded random strongly-connected topologies with random demand
//! sets. Floating-point outputs are compared through `f64::to_bits` — no
//! epsilon anywhere.

use segrout_algos::{
    greedy_wpo, heur_ospf, joint_heur, GreedyWpoConfig, HeurOspfConfig, JointHeurConfig,
};
use segrout_core::rng::StdRng;
use segrout_core::{DemandList, Network, NodeId, Router, WeightSetting};
use segrout_instances::{instance1, instance3, instance5};
use segrout_topo::random_connected;
use std::sync::{Mutex, MutexGuard};

/// The thread-count override is process-global; serialize the sweeps so
/// concurrently running tests don't change it mid-run.
fn threads_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` under 1 (serial reference), 2 and 8 threads and asserts the
/// results are identical.
fn assert_thread_invariant<R, F>(label: &str, f: F)
where
    R: PartialEq + std::fmt::Debug,
    F: Fn() -> R,
{
    let _guard = threads_lock();
    segrout_par::set_threads(1);
    let reference = f();
    for t in [2usize, 8] {
        segrout_par::set_threads(t);
        let got = f();
        segrout_par::set_threads(0);
        assert_eq!(
            got, reference,
            "{label}: threads={t} diverged from the serial reference"
        );
        segrout_par::set_threads(1);
    }
    segrout_par::set_threads(0);
}

/// Bit pattern of a weight setting (exact comparison, no tolerance).
fn weight_bits(w: &WeightSetting) -> Vec<u64> {
    w.as_slice().iter().map(|x| x.to_bits()).collect()
}

/// The six covered cases: (label, network, demands).
fn cases() -> Vec<(String, Network, DemandList)> {
    let mut out = Vec::new();
    for (label, inst) in [
        ("instance1(m=8)", instance1(8)),
        ("instance3(m=5)", instance3(5)),
        ("instance5(m=3)", instance5(3)),
    ] {
        out.push((label.to_string(), inst.network, inst.demands));
    }
    for seed in [11u64, 22, 33] {
        let net = random_connected(10, 20, seed);
        let mut rng = StdRng::seed_from_u64(seed * 7919);
        let n = net.node_count() as u32;
        let mut demands = DemandList::new();
        for _ in 0..12 {
            let s = rng.gen_range(0..n);
            let t = rng.gen_range(0..n);
            if s != t {
                demands.push(NodeId(s), NodeId(t), f64::from(rng.gen_range(1..=10u32)));
            }
        }
        out.push((format!("random(seed={seed})"), net, demands));
    }
    out
}

/// A cheap-but-nontrivial HeurOSPF configuration (the sweep runs every
/// optimizer three times per case).
fn ospf_cfg() -> HeurOspfConfig {
    HeurOspfConfig {
        restarts: 1,
        max_passes: 6,
        seed: 0xd15ea5e,
        ..Default::default()
    }
}

#[test]
fn heur_ospf_is_thread_count_invariant() {
    for (label, net, demands) in cases() {
        assert_thread_invariant(&format!("heur_ospf on {label}"), || {
            let w = heur_ospf(&net, &demands, &ospf_cfg());
            let mlu = Router::new(&net, &w).mlu(&demands).map(f64::to_bits);
            (weight_bits(&w), mlu)
        });
    }
}

#[test]
fn greedy_wpo_is_thread_count_invariant() {
    for (label, net, demands) in cases() {
        let weights = WeightSetting::inverse_capacity(&net);
        assert_thread_invariant(&format!("greedy_wpo on {label}"), || {
            let wp = greedy_wpo(&net, &demands, &weights, &GreedyWpoConfig::default())
                .expect("strongly connected instances route");
            let mlu = Router::new(&net, &weights)
                .evaluate(&demands, &wp)
                .expect("routes")
                .mlu;
            (wp, mlu.to_bits())
        });
    }
}

#[test]
fn joint_heur_is_thread_count_invariant() {
    for (label, net, demands) in cases() {
        assert_thread_invariant(&format!("joint_heur on {label}"), || {
            let r = joint_heur(
                &net,
                &demands,
                &JointHeurConfig {
                    ospf: ospf_cfg(),
                    ..Default::default()
                },
            )
            .expect("strongly connected instances route");
            (weight_bits(&r.weights), r.waypoints, r.mlu.to_bits())
        });
    }
}

#[test]
fn parallel_evaluator_is_thread_count_invariant() {
    // The ECMP evaluator itself (multi-destination demand list) must
    // produce bit-identical loads and MLU at any thread count.
    for (label, net, demands) in cases() {
        let weights = WeightSetting::inverse_capacity(&net);
        assert_thread_invariant(&format!("evaluator on {label}"), || {
            let router = Router::new(&net, &weights);
            let report = router
                .evaluate(
                    &demands,
                    &segrout_core::WaypointSetting::none(demands.len()),
                )
                .expect("routes");
            let loads: Vec<u64> = report.loads.iter().map(|x| x.to_bits()).collect();
            (loads, report.mlu.to_bits())
        });
    }
}
