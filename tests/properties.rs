//! Property-style tests over randomly generated networks, demands and
//! weight settings: the invariants every component must hold regardless of
//! input shape. Inputs are drawn from the vendored seeded PRNG
//! (deterministic sweeps), so runs are reproducible and need no external
//! test-framework dependency.

use segrout_algos::lwo_apx;
use segrout_core::rng::StdRng;
use segrout_core::{DemandList, Network, NodeId, Router, WaypointSetting, WeightSetting};
use segrout_graph::{acyclic_max_flow, decompose_into_paths, is_acyclic, max_flow, min_cut};
use segrout_topo::random_connected;
use std::sync::{Mutex, MutexGuard};

const CASES: u64 = 48;

/// Serializes tests that sweep the (process-global) thread-count override.
fn threads_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One generated case: a strongly connected network with 4-13 nodes plus a
/// vector of integer link weights in 1..=20.
fn case(seed: u64) -> (Network, Vec<f64>, u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    let n = rng.gen_range(4..14usize);
    let links = (n - 1).max(n * 3 / 2);
    let net = random_connected(n, links.min(n * (n - 1) / 2), seed);
    let m = net.edge_count();
    let weights = (0..m)
        .map(|_| f64::from(rng.gen_range(1..=20u32)))
        .collect();
    (net, weights, seed)
}

/// ECMP flow conservation: for any single demand, total inflow at the
/// target equals the demand size, and every intermediate node is balanced.
#[test]
fn ecmp_conserves_flow() {
    for seed in 0..CASES {
        let (net, weights, seed) = case(seed);
        let w = WeightSetting::new(&net, weights).expect("valid");
        let router = Router::new(&net, &w);
        let n = net.node_count() as u32;
        let src = NodeId(seed as u32 % n);
        let dst = NodeId((seed as u32 + 1 + seed as u32 % (n - 1)) % n);
        if src == dst {
            continue;
        }
        let mut demands = DemandList::new();
        demands.push(src, dst, 2.5);
        let report = router
            .evaluate(&demands, &WaypointSetting::none(1))
            .expect("strongly connected");
        let g = net.graph();
        for v in g.nodes() {
            let inflow: f64 = g.in_edges(v).iter().map(|e| report.loads[e.index()]).sum();
            let outflow: f64 = g.out_edges(v).iter().map(|e| report.loads[e.index()]).sum();
            let expected = if v == src {
                outflow - inflow - 2.5
            } else if v == dst {
                inflow - outflow - 2.5
            } else {
                inflow - outflow
            };
            assert!(
                expected.abs() < 1e-9,
                "seed {seed}: imbalance {expected} at {v:?}"
            );
        }
    }
}

/// Waypointed routing conserves flow too, and the loads are the sum of the
/// segment flows.
#[test]
fn waypoints_preserve_conservation() {
    for seed in 0..CASES {
        let (net, weights, seed) = case(seed);
        let w = WeightSetting::new(&net, weights).expect("valid");
        let router = Router::new(&net, &w);
        let n = net.node_count() as u32;
        let src = NodeId(seed as u32 % n);
        let dst = NodeId((seed as u32 + 2) % n);
        let wp = NodeId((seed as u32 + 1) % n);
        if src == dst || wp == src || wp == dst {
            continue;
        }
        let mut demands = DemandList::new();
        demands.push(src, dst, 1.0);
        let mut setting = WaypointSetting::none(1);
        setting.set(0, vec![wp]);
        let report = router.evaluate(&demands, &setting).expect("connected");
        // Waypoint node sees the full demand pass through.
        let g = net.graph();
        let inflow: f64 = g.in_edges(wp).iter().map(|e| report.loads[e.index()]).sum();
        assert!(
            inflow >= 1.0 - 1e-9,
            "seed {seed}: waypoint must receive the flow"
        );
    }
}

/// MLU is monotone and homogeneous in the demand size.
#[test]
fn mlu_scales_linearly() {
    for seed in 0..CASES {
        let (net, weights, seed) = case(seed);
        let w = WeightSetting::new(&net, weights).expect("valid");
        let router = Router::new(&net, &w);
        let n = net.node_count() as u32;
        let src = NodeId(seed as u32 % n);
        let dst = NodeId((seed as u32 + 1) % n);
        if src == dst {
            continue;
        }
        let mut d1 = DemandList::new();
        d1.push(src, dst, 1.0);
        let mut d3 = DemandList::new();
        d3.push(src, dst, 3.0);
        let a = router.mlu(&d1).expect("connected");
        let b = router.mlu(&d3).expect("connected");
        assert!(
            (3.0 * a - b).abs() < 1e-9 * (1.0 + b),
            "seed {seed}: {a} vs {b}"
        );
    }
}

/// Max flow equals the value of its own decomposition, the support is
/// acyclic after cancellation, and the flow respects capacities.
#[test]
fn max_flow_decomposition_roundtrip() {
    for seed in 0..CASES {
        let (net, _weights, seed) = case(seed);
        let n = net.node_count() as u32;
        let s = NodeId(seed as u32 % n);
        let t = NodeId((seed as u32 + 1) % n);
        if s == t {
            continue;
        }
        let flow = acyclic_max_flow(net.graph(), net.capacities(), s, t);
        assert!(is_acyclic(net.graph(), &flow.support_mask()), "seed {seed}");
        flow.validate(net.graph(), Some(net.capacities()))
            .expect("feasible");
        let paths = decompose_into_paths(net.graph(), &flow);
        let total: f64 = paths.iter().map(|p| p.amount).sum();
        assert!(
            (total - flow.value).abs() < 1e-6 * (1.0 + flow.value),
            "seed {seed}: decomposition {total} vs flow {}",
            flow.value
        );
        // Cycle cancellation must not change the value.
        let plain = max_flow(net.graph(), net.capacities(), s, t);
        assert!(
            (plain.value - flow.value).abs() < 1e-6 * (1.0 + flow.value),
            "seed {seed}"
        );
    }
}

/// LWO-APX always honours the Theorem 5.4 guarantee and its weight setting
/// actually carries the claimed even-split flow.
#[test]
fn lwo_apx_guarantee_holds() {
    for seed in 0..CASES {
        let (net, _weights, seed) = case(seed);
        let n = net.node_count() as u32;
        let s = NodeId(seed as u32 % n);
        let t = NodeId((seed as u32 + 1) % n);
        if s == t {
            continue;
        }
        let r = lwo_apx(&net, s, t).expect("strongly connected");
        let bound =
            (net.node_count() as f64) * (net.graph().max_out_degree() as f64).ln().ceil().max(1.0);
        assert!(r.achieved_ratio() <= bound + 1e-9, "seed {seed}");
        assert!(r.es_flow_value > 0.0, "seed {seed}");
        assert!(r.es_flow_value <= r.max_flow_value + 1e-9, "seed {seed}");
        // The pruned DAG is acyclic and the claimed flow fits.
        assert!(is_acyclic(net.graph(), &r.dag_mask), "seed {seed}");
        let mut demands = DemandList::new();
        demands.push(s, t, r.es_flow_value);
        let mlu = Router::new(&net, &r.weights).mlu(&demands).expect("routes");
        assert!(
            mlu <= 1.0 + 1e-6,
            "seed {seed}: claimed ES-flow overloads: {mlu}"
        );
    }
}

/// The sparse segment loads always sum to the dense evaluation.
#[test]
fn sparse_loads_match_dense() {
    for seed in 0..CASES {
        let (net, weights, seed) = case(seed);
        let w = WeightSetting::new(&net, weights).expect("valid");
        let router = Router::new(&net, &w);
        let n = net.node_count() as u32;
        let src = NodeId(seed as u32 % n);
        let dst = NodeId((seed as u32 + 1) % n);
        if src == dst {
            continue;
        }
        let sparse = router.segment_loads_sparse(src, dst, 1.5).expect("routes");
        let dense = router
            .loads_for_segments(&[segrout_core::Segment {
                src,
                dst,
                amount: 1.5,
            }])
            .expect("routes");
        let mut acc = vec![0.0; net.edge_count()];
        for (e, l) in sparse {
            acc[e.index()] += l;
        }
        for e in 0..net.edge_count() {
            assert!((acc[e] - dense[e]).abs() < 1e-9, "seed {seed}: edge {e}");
        }
    }
}

/// Max-flow / min-cut duality on random networks: the extracted cut's
/// capacity equals the flow value and removing it disconnects the pair.
#[test]
fn max_flow_min_cut_duality() {
    for seed in 0..CASES {
        let (net, _w, seed) = case(seed);
        let n = net.node_count() as u32;
        let s = NodeId(seed as u32 % n);
        let t = NodeId((seed as u32 + 1) % n);
        if s == t {
            continue;
        }
        let flow = max_flow(net.graph(), net.capacities(), s, t);
        let cut = min_cut(net.graph(), net.capacities(), s, t);
        assert!(
            (flow.value - cut.capacity).abs() < 1e-6 * (1.0 + flow.value),
            "seed {seed}"
        );
        let cut_sum: f64 = cut.edges.iter().map(|e| net.capacities()[e.index()]).sum();
        assert!(
            (cut_sum - cut.capacity).abs() < 1e-6 * (1.0 + cut_sum),
            "seed {seed}"
        );
        assert!(cut.source_side[s.index()], "seed {seed}");
        assert!(!cut.source_side[t.index()], "seed {seed}");
    }
}

/// The parallel evaluator obeys flow conservation on multi-demand lists:
/// every transit node is balanced and the inflow at each target exceeds its
/// net terminating demand — and the loads are bit-identical at 1, 2 and 8
/// threads.
#[test]
fn parallel_evaluator_conserves_flow() {
    let _guard = threads_lock();
    for seed in 0..CASES / 4 {
        let (net, weights, seed) = case(seed);
        let w = WeightSetting::new(&net, weights).expect("valid");
        let n = net.node_count() as u32;
        // A multi-demand list with several distinct destinations, so the
        // evaluator's per-destination fan-out actually has work to split.
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xa076_1d64_78bd_642f));
        let mut demands = DemandList::new();
        for _ in 0..8 {
            let s = rng.gen_range(0..n);
            let t = rng.gen_range(0..n);
            if s != t {
                demands.push(NodeId(s), NodeId(t), f64::from(rng.gen_range(1..=5u32)));
            }
        }
        if demands.is_empty() {
            continue;
        }

        let mut reference: Option<Vec<u64>> = None;
        for threads in [1usize, 2, 8] {
            segrout_par::set_threads(threads);
            let router = Router::new(&net, &w);
            let report = router
                .evaluate(&demands, &WaypointSetting::none(demands.len()))
                .expect("strongly connected");
            segrout_par::set_threads(0);

            // Bit-identical loads across thread counts.
            let bits: Vec<u64> = report.loads.iter().map(|x| x.to_bits()).collect();
            match &reference {
                None => reference = Some(bits),
                Some(r) => assert_eq!(&bits, r, "seed {seed}: threads={threads} diverged"),
            }

            // Conservation: at every node, inflow - outflow equals the net
            // demand terminating there (demands ending minus starting).
            let g = net.graph();
            for v in g.nodes() {
                let inflow: f64 = g.in_edges(v).iter().map(|e| report.loads[e.index()]).sum();
                let outflow: f64 = g.out_edges(v).iter().map(|e| report.loads[e.index()]).sum();
                let net_terminating: f64 = demands
                    .iter()
                    .map(|d| {
                        if d.dst == v {
                            d.size
                        } else if d.src == v {
                            -d.size
                        } else {
                            0.0
                        }
                    })
                    .sum();
                assert!(
                    (inflow - outflow - net_terminating).abs() < 1e-9,
                    "seed {seed} threads {threads}: imbalance at {v:?}: \
                     in {inflow} out {outflow} net demand {net_terminating}"
                );
            }
        }
    }
}

/// No weight setting beats the fluid (MCF) optimum: for a single demand of
/// size equal to the max-flow value, the MLU of `lwo_apx`'s weights is at
/// least 1. Verified under the parallel evaluator at 1 and 4 threads.
#[test]
fn lwo_apx_never_beats_mcf_lower_bound() {
    let _guard = threads_lock();
    for seed in 0..CASES / 2 {
        let (net, _weights, seed) = case(seed);
        let n = net.node_count() as u32;
        let s = NodeId(seed as u32 % n);
        let t = NodeId((seed as u32 + 1) % n);
        if s == t {
            continue;
        }
        // MCF lower bound for one (s,t) pair: routing `maxflow` units needs
        // MLU >= 1 under ANY weight setting (ECMP is a feasible flow).
        let flow = max_flow(net.graph(), net.capacities(), s, t);
        assert!(flow.value > 0.0, "seed {seed}: disconnected pair");
        let r = lwo_apx(&net, s, t).expect("strongly connected");
        let mut demands = DemandList::new();
        demands.push(s, t, flow.value);

        let mut reference: Option<u64> = None;
        for threads in [1usize, 4] {
            segrout_par::set_threads(threads);
            let mlu = Router::new(&net, &r.weights).mlu(&demands).expect("routes");
            segrout_par::set_threads(0);
            assert!(
                mlu >= 1.0 - 1e-9,
                "seed {seed} threads {threads}: ECMP beat the MCF bound: {mlu}"
            );
            match reference {
                None => reference = Some(mlu.to_bits()),
                Some(bits) => assert_eq!(
                    mlu.to_bits(),
                    bits,
                    "seed {seed}: threads={threads} diverged"
                ),
            }
        }
    }
}

/// Segment-chained routing conserves flow end to end for random
/// two-waypoint chains.
#[test]
fn two_waypoint_chain_conserves() {
    for seed in 0..CASES {
        let (net, weights, seed) = case(seed);
        let w = WeightSetting::new(&net, weights).expect("valid");
        let router = Router::new(&net, &w);
        let n = net.node_count() as u32;
        let src = NodeId(seed as u32 % n);
        let dst = NodeId((seed as u32 + 1) % n);
        let w1 = NodeId((seed as u32 + 2) % n);
        let w2 = NodeId((seed as u32 + 3) % n);
        if src == dst || w1 == w2 {
            continue;
        }
        let mut demands = DemandList::new();
        demands.push(src, dst, 2.0);
        let mut setting = WaypointSetting::none(1);
        setting.set(0, vec![w1, w2]);
        let report = router
            .evaluate(&demands, &setting)
            .expect("strongly connected");
        let g = net.graph();
        // Net flow out of the source equals net flow into the target equals
        // the demand size (intermediate double-visits cancel out).
        let out_s: f64 = g
            .out_edges(src)
            .iter()
            .map(|e| report.loads[e.index()])
            .sum();
        let in_s: f64 = g
            .in_edges(src)
            .iter()
            .map(|e| report.loads[e.index()])
            .sum();
        let out_t: f64 = g
            .out_edges(dst)
            .iter()
            .map(|e| report.loads[e.index()])
            .sum();
        let in_t: f64 = g
            .in_edges(dst)
            .iter()
            .map(|e| report.loads[e.index()])
            .sum();
        assert!(
            (out_s - in_s - 2.0).abs() < 1e-9,
            "seed {seed}: source imbalance"
        );
        assert!(
            (in_t - out_t - 2.0).abs() < 1e-9,
            "seed {seed}: target imbalance"
        );
    }
}
