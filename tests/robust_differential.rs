//! Differential battery for the robust multi-matrix optimization layer.
//!
//! The contract under test: every classic single-matrix entry point
//! (`heur_ospf`, `greedy_wpo`, `joint_heur`, `joint_milp`) is a thin wrapper
//! over its `*_robust` generalization with a one-element [`DemandSet`], and
//! that reduction is **bit-identical** — same weights, same waypoints, same
//! Φ and MLU down to `f64::to_bits`, at any thread count. On top of that,
//! the robust MILP is cross-checked against independent per-matrix exact
//! evaluation and against every single-matrix optimum evaluated across the
//! whole set.

use segrout_algos::{
    greedy_wpo, greedy_wpo_robust, heur_ospf, heur_ospf_robust, joint_heur, joint_heur_robust,
    GreedyWpoConfig, HeurOspfConfig, JointHeurConfig,
};
use segrout_core::rng::StdRng;
use segrout_core::{
    evaluate_robust, fortz_phi, DemandList, DemandSet, Network, NodeId, RobustObjective, Router,
    WaypointSetting, WeightSetting,
};
use segrout_milp::{joint_milp, joint_milp_robust, JointMilpOptions};
use segrout_topo::random_connected;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Thread-count override is process-global; serialize the tests of this
/// binary so they don't observe each other's settings.
fn global_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Seeded random demand list over `net` with `count` attempted pairs.
fn random_demands(net: &Network, seed: u64, count: usize) -> DemandList {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = net.node_count() as u32;
    let mut demands = DemandList::new();
    for _ in 0..count {
        let s = rng.gen_range(0..n);
        let t = rng.gen_range(0..n);
        if s != t {
            demands.push(NodeId(s), NodeId(t), f64::from(rng.gen_range(1..=9u32)));
        }
    }
    demands
}

/// A K-matrix aligned set: the base demands plus `extra` rescaled variants
/// whose pair-level multipliers differ (shape changes, not just scale).
fn scaled_set(demands: &DemandList, extra: usize, seed: u64) -> DemandSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = DemandSet::single(demands.clone());
    for j in 0..extra {
        let mut m = DemandList::new();
        for i in 0..demands.len() {
            let d = demands[i];
            let factor = 0.5 + 1.5 * rng.gen::<f64>();
            m.push(d.src, d.dst, d.size * factor);
        }
        set.push(format!("x{j}"), m);
    }
    set
}

/// `(Φ bits, MLU bits)` of a configuration on one matrix, from scratch.
fn eval_bits(
    net: &Network,
    weights: &WeightSetting,
    demands: &DemandList,
    waypoints: &WaypointSetting,
) -> (u64, u64) {
    let report = Router::new(net, weights)
        .evaluate(demands, waypoints)
        .expect("strongly connected cases route");
    let phi = fortz_phi(&report.loads, net.capacities());
    (phi.to_bits(), report.mlu.to_bits())
}

/// The single-matrix reduction fingerprint of all three heuristics plus the
/// tiny-instance MILP: weight vectors, waypoint settings, and Φ/MLU bits.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    ospf_weights: Vec<f64>,
    wpo: WaypointSetting,
    joint_weights: Vec<f64>,
    joint_wp: WaypointSetting,
    joint_mlu: u64,
    joint_matrix_mlus: Vec<u64>,
    phi_mlu: (u64, u64),
}

fn single_matrix_fingerprint(net: &Network, demands: &DemandList, robust: bool) -> Fingerprint {
    let single = DemandSet::single(demands.clone());
    let ocfg = HeurOspfConfig {
        max_weight: 6,
        restarts: 1,
        max_passes: 3,
        seed: 0x5eed,
        ..Default::default()
    };
    let wcfg = GreedyWpoConfig::default();
    let jcfg = JointHeurConfig {
        ospf: ocfg.clone(),
        wpo: wcfg.clone(),
        ..Default::default()
    };

    let (weights, wp, joint) = if robust {
        let w = heur_ospf_robust(net, &single, RobustObjective::WorstCase, &ocfg);
        let p = greedy_wpo_robust(net, &single, &w, RobustObjective::WorstCase, &wcfg)
            .expect("routable");
        let j =
            joint_heur_robust(net, &single, RobustObjective::WorstCase, &jcfg).expect("routable");
        (w, p, j)
    } else {
        let w = heur_ospf(net, demands, &ocfg);
        let p = greedy_wpo(net, demands, &w, &wcfg).expect("routable");
        let j = joint_heur(net, demands, &jcfg).expect("routable");
        (w, p, j)
    };
    let phi_mlu = eval_bits(net, &joint.weights, demands, &joint.waypoints);
    Fingerprint {
        ospf_weights: weights.as_slice().to_vec(),
        wpo: wp,
        joint_weights: joint.weights.as_slice().to_vec(),
        joint_wp: joint.waypoints.clone(),
        joint_mlu: joint.mlu.to_bits(),
        joint_matrix_mlus: joint.matrix_mlus.iter().map(|m| m.to_bits()).collect(),
        phi_mlu,
    }
}

/// Satellite 1: a one-matrix `DemandSet` produces bit-identical weights,
/// waypoints, Φ and MLU through every robust optimizer as the classic
/// single-matrix entry point — at 1 and 4 worker threads, and identically
/// across the two thread counts.
#[test]
fn single_matrix_set_reduces_bit_identically_for_heuristics() {
    let _guard = global_lock();
    for seed in [3u64, 11] {
        let net = random_connected(8, 16, seed);
        let demands = random_demands(&net, seed * 7919, 10);
        let mut per_thread = Vec::new();
        for t in [1usize, 4] {
            segrout_par::set_threads(t);
            let classic = single_matrix_fingerprint(&net, &demands, false);
            let robust = single_matrix_fingerprint(&net, &demands, true);
            assert_eq!(
                classic, robust,
                "seed {seed} t={t}: single-matrix reduction diverged"
            );
            per_thread.push(classic);
        }
        segrout_par::set_threads(0);
        assert_eq!(
            per_thread[0], per_thread[1],
            "seed {seed}: thread count changed the trajectory"
        );
    }
}

/// A bilinked diamond with asymmetric capacities: small enough for the MILP
/// to prove optimality in seconds, rich enough that weights matter. Wall
/// clock must never bind (it would make node counts nondeterministic), so
/// MILP legs use a large `time_limit` and a tiny instance.
fn diamond() -> (Network, DemandList) {
    let mut b = Network::builder(4);
    b.bilink(NodeId(0), NodeId(1), 2.0);
    b.bilink(NodeId(1), NodeId(3), 1.0);
    b.bilink(NodeId(0), NodeId(2), 1.0);
    b.bilink(NodeId(2), NodeId(3), 2.0);
    let net = b.build().expect("valid");
    let mut d = DemandList::new();
    d.push(NodeId(0), NodeId(3), 2.0);
    d.push(NodeId(1), NodeId(2), 1.0);
    (net, d)
}

fn milp_options() -> JointMilpOptions {
    JointMilpOptions {
        max_weight: 3,
        waypoints: 1,
        milp: segrout_lp::MilpOptions {
            node_limit: 100_000,
            time_limit: Duration::from_secs(600),
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Satellite 1 (MILP leg): the robust Joint MILP on a one-matrix set is
/// bit-identical to the classic `joint_milp` — same weights, waypoints,
/// MLU, dual bound, and node count, at both thread counts.
#[test]
fn single_matrix_set_reduces_bit_identically_for_joint_milp() {
    let _guard = global_lock();
    let (net, demands) = diamond();
    let options = milp_options();
    let mut per_thread = Vec::new();
    for t in [1usize, 4] {
        segrout_par::set_threads(t);
        let classic = joint_milp(&net, &demands, &options).expect("feasible");
        let robust = joint_milp_robust(
            &net,
            &DemandSet::single(demands.clone()),
            RobustObjective::WorstCase,
            &options,
        )
        .expect("feasible");
        assert_eq!(classic.weights.as_slice(), robust.weights.as_slice());
        assert_eq!(classic.waypoints, robust.waypoints);
        assert_eq!(classic.mlu.to_bits(), robust.mlu.to_bits());
        assert_eq!(classic.bound.to_bits(), robust.bound.to_bits());
        assert_eq!(classic.nodes, robust.nodes);
        assert_eq!(robust.matrix_mlus.len(), 1);
        assert_eq!(robust.matrix_mlus[0].to_bits(), robust.mlu.to_bits());
        per_thread.push((
            classic.weights.as_slice().to_vec(),
            classic.mlu.to_bits(),
            classic.nodes,
        ));
    }
    segrout_par::set_threads(0);
    assert_eq!(per_thread[0], per_thread[1], "thread count changed MILP");
}

/// Satellite 2: MILP oracle cross-check. The robust MILP's reported
/// worst-case MLU equals the max over independent per-matrix exact ECMP
/// evaluations of its configuration, and is no worse (within 1e-6) than the
/// worst-case MLU of **every** single-matrix optimum evaluated across the
/// whole set.
#[test]
fn robust_milp_cross_checks_against_per_matrix_oracles() {
    let _guard = global_lock();
    segrout_par::set_threads(1);
    let (net, demands) = diamond();
    let set = scaled_set(&demands, 2, 0x0dd5);
    let options = milp_options();

    let robust =
        joint_milp_robust(&net, &set, RobustObjective::WorstCase, &options).expect("feasible");
    assert_eq!(
        robust.status,
        segrout_lp::MilpStatus::Optimal,
        "oracle instance must be solved to optimality"
    );

    // (a) Reported worst-case == max over independent per-matrix evaluation.
    let mut independent = Vec::new();
    for k in 0..set.len() {
        let (_, mlu_bits) = eval_bits(&net, &robust.weights, set.matrix(k), &robust.waypoints);
        assert_eq!(
            robust.matrix_mlus[k].to_bits(),
            mlu_bits,
            "matrix {k}: reported per-matrix MLU differs from scratch eval"
        );
        independent.push(f64::from_bits(mlu_bits));
    }
    let max_independent = independent
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    assert_eq!(
        robust.mlu.to_bits(),
        max_independent.to_bits(),
        "robust MILP MLU must be the exact max over per-matrix evaluations"
    );

    // (b) No single-matrix optimum beats the robust optimum on worst-case
    // MLU over the set.
    for k in 0..set.len() {
        let single = joint_milp(&net, set.matrix(k), &options).expect("feasible");
        assert_eq!(single.status, segrout_lp::MilpStatus::Optimal);
        let worst = evaluate_robust(&net, &single.weights, &set, &single.waypoints)
            .expect("routable")
            .worst_mlu();
        assert!(
            robust.mlu <= worst + 1e-6,
            "single-matrix optimum {k} beats the robust optimum over the set: \
             robust={} vs single-worst={worst}",
            robust.mlu
        );
        // The robust optimum can never beat matrix k's own optimum on k.
        assert!(
            robust.matrix_mlus[k] >= single.mlu - 1e-6,
            "robust config out-performs the per-matrix optimum on matrix {k}"
        );
    }
    segrout_par::set_threads(0);
}

/// Multi-matrix heuristics at 1 and 4 threads trace identical trajectories:
/// the `(candidate × matrix)` fan-out is speculative only.
#[test]
fn multi_matrix_heuristics_are_thread_deterministic() {
    let _guard = global_lock();
    let net = random_connected(9, 18, 77);
    let demands = random_demands(&net, 0x717, 12);
    let set = scaled_set(&demands, 3, 0x5ca1e);
    let jcfg = JointHeurConfig {
        ospf: HeurOspfConfig {
            max_weight: 6,
            restarts: 1,
            max_passes: 2,
            seed: 0xf00d,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut runs = Vec::new();
    for t in [1usize, 4] {
        segrout_par::set_threads(t);
        for robust in [RobustObjective::WorstCase, RobustObjective::Quantile(0.5)] {
            let r = joint_heur_robust(&net, &set, robust, &jcfg).expect("routable");
            runs.push((
                r.weights.as_slice().to_vec(),
                r.waypoints.clone(),
                r.mlu.to_bits(),
                r.matrix_mlus
                    .iter()
                    .map(|m| m.to_bits())
                    .collect::<Vec<_>>(),
            ));
        }
    }
    segrout_par::set_threads(0);
    let (first, rest) = runs.split_at(2);
    assert_eq!(
        first, rest,
        "multi-matrix trajectories diverged across thread counts"
    );
}
