//! Property tests for the robust multi-matrix evaluation layer.
//!
//! Three laws, checked over seeded random topologies, demand sets, weight
//! settings and waypoint settings:
//!
//! 1. **Monotonicity** — for a fixed configuration, adding a matrix to the
//!    set never decreases the worst-case MLU (the max over a superset
//!    dominates), and the prefix envelope equals the running max.
//! 2. **Quantile unit** — `Quantile(1.0)` aggregates bit-identically to
//!    `WorstCase`, on raw slices and through `evaluate_robust`.
//! 3. **Incremental agreement** — the per-matrix MLU/Φ an
//!    [`IncrementalEvaluator`] reports for each matrix of a set is
//!    `to_bits`-equal to a from-scratch [`Router`] evaluation under integral
//!    weights.

use segrout_core::rng::StdRng;
use segrout_core::{
    evaluate_robust, fortz_phi, DemandList, DemandSet, IncrementalEvaluator, Network, NodeId,
    RobustObjective, Router, WaypointSetting, WeightSetting,
};
use segrout_topo::random_connected;

struct Scenario {
    net: Network,
    set: DemandSet,
    weights: WeightSetting,
    waypoints: WaypointSetting,
}

/// Seeded random scenario: strongly-connected topology, 2–5 aligned
/// matrices over random pairs, integral weights, sparse waypoints.
fn scenario(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 6 + (seed % 5) as usize;
    let net = random_connected(n, 2 * n, seed ^ 0x70b0);
    let n_nodes = net.node_count() as u32;

    let mut base = DemandList::new();
    for _ in 0..(3 + rng.gen_range(0..8u32) as usize) {
        let s = rng.gen_range(0..n_nodes);
        let t = rng.gen_range(0..n_nodes);
        if s != t {
            base.push(NodeId(s), NodeId(t), f64::from(rng.gen_range(1..=9u32)));
        }
    }
    let mut set = DemandSet::single(base.clone());
    for j in 0..(1 + rng.gen_range(0..4u32) as usize) {
        let mut m = DemandList::new();
        for i in 0..base.len() {
            let d = base[i];
            m.push(d.src, d.dst, d.size * (0.3 + 1.4 * rng.gen::<f64>()));
        }
        set.push(format!("m{}", j + 1), m);
    }

    let weights = WeightSetting::new(
        &net,
        (0..net.edge_count())
            .map(|_| f64::from(rng.gen_range(1..=12u32)))
            .collect(),
    )
    .expect("weights in range");

    let mut waypoints = WaypointSetting::none(base.len());
    for i in 0..base.len() {
        if rng.gen::<f64>() < 0.4 {
            let via = NodeId(rng.gen_range(0..n_nodes));
            let d = base[i];
            if via != d.src && via != d.dst {
                waypoints.set(i, vec![via]);
            }
        }
    }
    Scenario {
        net,
        set,
        weights,
        waypoints,
    }
}

#[test]
fn adding_a_matrix_never_decreases_worst_case_mlu() {
    for seed in 0..12u64 {
        let sc = scenario(seed);
        let full = evaluate_robust(&sc.net, &sc.weights, &sc.set, &sc.waypoints)
            .expect("strongly connected cases route");
        let mut prev = f64::NEG_INFINITY;
        for k in 1..=sc.set.len() {
            let prefix: DemandSet = (0..k)
                .map(|j| (sc.set.name(j).to_string(), sc.set.matrix(j).clone()))
                .collect();
            let worst = evaluate_robust(&sc.net, &sc.weights, &prefix, &sc.waypoints)
                .expect("routable")
                .worst_mlu();
            assert!(
                worst >= prev,
                "seed {seed}: worst-case MLU decreased when matrix {k} joined \
                 the set ({prev} -> {worst})"
            );
            // The prefix envelope is exactly the running max of the full
            // evaluation's per-matrix MLUs.
            let running = RobustObjective::WorstCase.aggregate(&full.mlus[..k]);
            assert_eq!(worst.to_bits(), running.to_bits(), "seed {seed}, k={k}");
            prev = worst;
        }
        assert_eq!(prev.to_bits(), full.worst_mlu().to_bits(), "seed {seed}");
    }
}

#[test]
fn quantile_one_is_bit_identical_to_worst_case() {
    // Raw aggregation on adversarial slices (ties, negatives, infinities).
    let slices: Vec<Vec<f64>> = vec![
        vec![1.0],
        vec![0.25, 0.25, 0.25],
        vec![3.0, -1.0, 2.0, 2.0],
        vec![f64::INFINITY, 0.5],
        vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7],
    ];
    for s in &slices {
        assert_eq!(
            RobustObjective::Quantile(1.0).aggregate(s).to_bits(),
            RobustObjective::WorstCase.aggregate(s).to_bits(),
        );
        // The quantile never exceeds the worst case.
        for q in [0.25, 0.5, 0.75] {
            assert!(
                RobustObjective::Quantile(q).aggregate(s)
                    <= RobustObjective::WorstCase.aggregate(s)
            );
        }
    }
    // Through full evaluation reports.
    for seed in 20..26u64 {
        let sc = scenario(seed);
        let rep = evaluate_robust(&sc.net, &sc.weights, &sc.set, &sc.waypoints).expect("routable");
        assert_eq!(
            rep.aggregate_mlu(RobustObjective::Quantile(1.0)).to_bits(),
            rep.aggregate_mlu(RobustObjective::WorstCase).to_bits(),
            "seed {seed}: MLU aggregation"
        );
        assert_eq!(
            rep.aggregate_phi(RobustObjective::Quantile(1.0)).to_bits(),
            rep.aggregate_phi(RobustObjective::WorstCase).to_bits(),
            "seed {seed}: phi aggregation"
        );
    }
}

#[test]
fn incremental_per_matrix_eval_matches_scratch_router() {
    for seed in 40..48u64 {
        let sc = scenario(seed);
        let router = Router::new(&sc.net, &sc.weights);
        let caps = sc.net.capacities();
        for k in 0..sc.set.len() {
            let demands = sc.set.matrix(k);
            let scratch = router
                .evaluate(demands, &sc.waypoints)
                .expect("strongly connected cases route");
            let scratch_phi = fortz_phi(&scratch.loads, caps);

            let ev = IncrementalEvaluator::new(&sc.net, &sc.weights, demands, &sc.waypoints)
                .expect("routable workload");
            assert_eq!(
                ev.mlu().to_bits(),
                scratch.mlu.to_bits(),
                "seed {seed} matrix {k}: MLU"
            );
            assert_eq!(
                ev.phi().to_bits(),
                scratch_phi.to_bits(),
                "seed {seed} matrix {k}: phi"
            );
            let ev_bits: Vec<u64> = ev.loads().iter().map(|x| x.to_bits()).collect();
            let scratch_bits: Vec<u64> = scratch.loads.iter().map(|x| x.to_bits()).collect();
            assert_eq!(ev_bits, scratch_bits, "seed {seed} matrix {k}: loads");

            // And the set-level report agrees entry-wise with both.
            let rep =
                evaluate_robust(&sc.net, &sc.weights, &sc.set, &sc.waypoints).expect("routable");
            assert_eq!(rep.mlus[k].to_bits(), scratch.mlu.to_bits());
            assert_eq!(rep.phis[k].to_bits(), scratch_phi.to_bits());
        }
    }
}
