//! Regression pins for the serving fix: `reoptimize_weights` (and the
//! daemon's per-event path) must drive ONE live `IncrementalEvaluator`
//! instead of rebuilding routers per candidate — observable in the
//! process-global counters. This file is its own test binary with a single
//! test, because the obs registry is process-wide and any concurrent test
//! would race the deltas.

use segrout::algos::{reoptimize_weights, HeurOspfConfig, ReoptimizeConfig, ServeConfig};
use segrout::algos::{ServeEvent, ServeSession, ServeTier};
use segrout::core::rng::StdRng;
use segrout::core::{DemandList, NodeId, WaypointSetting, WeightSetting};
use segrout::topo::by_name;
use std::collections::BTreeSet;

fn counter(name: &str) -> u64 {
    segrout::obs::counter(name).get()
}

#[test]
fn one_evaluator_per_search_and_no_rebuilds_per_event() {
    let net = by_name("Germany50").expect("embedded");
    let mut rng = StdRng::seed_from_u64(0xc0fe);
    let n = net.node_count() as u32;
    let mut demands = DemandList::new();
    while demands.len() < 40 {
        let s = rng.gen_range(0..n);
        let t = rng.gen_range(0..n);
        if s != t {
            demands.push(NodeId(s), NodeId(t), f64::from(rng.gen_range(5..=15u32)));
        }
    }
    let dests = demands.iter().map(|d| d.dst).collect::<BTreeSet<_>>().len() as u64;

    // ---- Pin 1: reoptimize_weights drives one evaluator. ----
    let cfg = ReoptimizeConfig {
        max_weight_changes: 3,
        ospf: HeurOspfConfig {
            seed: 7,
            max_passes: 3,
            ..Default::default()
        },
        ..Default::default()
    };
    let recomputes0 = counter("ecmp.recomputes");
    let probes0 = counter("incr.probes");
    let evals0 = counter("reopt.evaluations");
    let reuses0 = counter("arena.reuses");

    let result =
        reoptimize_weights(&net, &demands, &WeightSetting::unit(&net), &cfg).expect("routable");
    assert!(result.mlu.is_finite());

    let d_recomputes = counter("ecmp.recomputes") - recomputes0;
    let d_probes = counter("incr.probes") - probes0;
    let d_evals = counter("reopt.evaluations") - evals0;
    let d_reuses = counter("arena.reuses") - reuses0;
    assert!(
        d_evals > 50,
        "the search must probe many candidates: {d_evals}"
    );
    assert_eq!(
        d_probes, d_evals,
        "every candidate evaluation is exactly one incremental probe"
    );
    assert!(
        d_reuses > 0,
        "probes must fold from the cached prefix slab ({d_reuses} reuses, {d_evals} evals)"
    );
    // Building the one evaluator costs `dests` full per-destination
    // evaluations; after that, probes repair instead of recomputing (a
    // probe may still fall back to a full DAG rebuild when the dirty
    // frontier blows past the cap, so allow up to one per eval — the old
    // router-per-candidate implementation burned `dests` per eval).
    assert!(
        d_recomputes <= dests + d_evals,
        "search must not rebuild per candidate: {d_recomputes} recomputes \
         for {d_evals} evals over {dests} destinations"
    );

    // ---- Pin 2: probe-tier serve events never rebuild SP-DAGs. ----
    let session_cfg = ServeConfig {
        reopt: cfg,
        ..Default::default()
    };
    let n_demands = demands.len();
    let mut session = ServeSession::new(
        &net,
        &result.weights,
        demands,
        WaypointSetting::none(n_demands),
        session_cfg,
    )
    .expect("session opens");

    let recomputes1 = counter("ecmp.recomputes");
    let dirty1 = counter("incr.dirty_dests");
    let rebuilds1 = counter("arena.rebuilds");
    let events = 10u64;
    for k in 0..events {
        // Tiny drifts: bitwise-new seeds (dirty rows must be re-propagated
        // in place) but far below the reopt threshold, so every event stays
        // in the probe tier.
        let r = session.apply(&ServeEvent::DemandScale {
            index: k as usize,
            factor: 1.001,
        });
        assert_eq!(r.tier, ServeTier::Probe, "event {k} must stay probe-tier");
    }
    assert_eq!(
        counter("ecmp.recomputes") - recomputes1,
        0,
        "consecutive in-place events must not rebuild a single SP-DAG"
    );
    assert!(
        counter("incr.dirty_dests") - dirty1 >= events,
        "each scale event repairs at least the scaled demand's destination row"
    );
    assert!(
        counter("arena.rebuilds") - rebuilds1 <= events,
        "at most one prefix-slab refold per event"
    );
    assert_eq!(session.stats().events, events);
}
