//! Differential suite for the online serving engine: after **every** event,
//! the daemon's in-place state must be `f64::to_bits`-identical to a
//! from-scratch reconstruction of the same inputs — and the whole event
//! walk must replay bit-identically at 1 and 4 worker threads, with either
//! Dijkstra engine.
//!
//! Two oracles per event:
//!
//! 1. **State**: rebuild a fresh network carrying the session's effective
//!    capacities, construct a fresh `IncrementalEvaluator` with the
//!    session's weights/demands/waypoints/failure mask, and compare loads,
//!    Φ, MLU bitwise.
//! 2. **Search**: when an event triggered the local-search tier, re-run
//!    `reoptimize_weights_on` from the pre-event weights on a fresh
//!    evaluator with the same config — it must reproduce the session's
//!    deployed weights bitwise (the probes are bit-identical, so the
//!    acceptance trajectory is too).

use segrout::algos::{
    reoptimize_weights_on, round_deployed, ServeConfig, ServeEvent, ServeSession, ServeTier,
};
use segrout::core::rng::StdRng;
use segrout::core::{
    DemandList, EdgeId, IncrementalEvaluator, Network, NodeId, WaypointSetting, WeightSetting,
};
use segrout::instances::{instance1, instance3, instance5};
use segrout::topo::by_name;
use std::sync::{Mutex, MutexGuard};

/// The thread-count override and the heap-only engine toggle are both
/// process-global; serialize the tests of this binary.
fn global_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Restores engine dispatch and the thread default even on panic.
struct Restore;
impl Drop for Restore {
    fn drop(&mut self) {
        segrout::graph::set_heap_only(false);
        segrout::par::set_threads(0);
    }
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// The covered `(label, network, demands)` cases: paper instances with
/// their own demands, plus Germany50 under a seeded random matrix.
fn cases() -> Vec<(String, Network, DemandList)> {
    let mut out = Vec::new();
    for (label, inst) in [
        ("instance1(m=8)", instance1(8)),
        ("instance3(m=5)", instance3(5)),
        ("instance5(m=3)", instance5(3)),
    ] {
        out.push((label.to_string(), inst.network, inst.demands));
    }
    let g50 = by_name("Germany50").expect("embedded");
    let mut rng = StdRng::seed_from_u64(0x5e4e);
    let n = g50.node_count() as u32;
    let mut demands = DemandList::new();
    while demands.len() < 40 {
        let s = rng.gen_range(0..n);
        let t = rng.gen_range(0..n);
        if s != t {
            demands.push(NodeId(s), NodeId(t), f64::from(rng.gen_range(1..=10u32)));
        }
    }
    out.push(("Germany50".to_string(), g50, demands));
    out
}

/// A scripted event sequence covering every event type, seeded per case.
/// Link downs are tracked so some later event brings them back up.
fn scripted_events(net: &Network, demands: &DemandList, seed: u64) -> Vec<ServeEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = net.edge_count() as u32;
    let mut down: Vec<EdgeId> = Vec::new();
    let mut events = Vec::new();
    for step in 0..12 {
        let event = match step % 6 {
            0 | 3 => ServeEvent::DemandScale {
                index: rng.gen_range(0..demands.len() as u64) as usize,
                factor: 0.5 + 1.5 * rng.gen_f64(),
            },
            1 => {
                let e = EdgeId(rng.gen_range(0..m));
                down.push(e);
                ServeEvent::LinkDown { edge: e }
            }
            2 => ServeEvent::Capacity {
                edge: EdgeId(rng.gen_range(0..m)),
                capacity: 1.0 + 20.0 * rng.gen_f64(),
            },
            4 => match down.pop() {
                Some(e) => ServeEvent::LinkUp { edge: e },
                None => ServeEvent::Noop,
            },
            _ => ServeEvent::DemandMatrix {
                // Same pairs, globally rescaled: exercises the same-dest-set
                // in-place workload swap.
                demands: demands
                    .iter()
                    .map(|d| (d.src, d.dst, d.size * 0.9))
                    .collect(),
            },
        };
        events.push(event);
    }
    events
}

/// Scratch network clone carrying `caps` as its nominal capacities.
fn recapacitated(net: &Network, caps: &[f64]) -> Network {
    let mut b = Network::builder(net.node_count());
    for (e, u, v) in net.graph().edges() {
        b.link(u, v, caps[e.index()]);
    }
    b.build().expect("clone of a valid network is valid")
}

/// From-scratch oracle of the session's current state.
fn scratch_state(session: &ServeSession<'_>) -> (Vec<u64>, u64, u64) {
    let ev = session.evaluator();
    let scratch_net = recapacitated(session.network(), ev.capacities());
    let weights =
        WeightSetting::new(&scratch_net, ev.weights().to_vec()).expect("deployed weights valid");
    let failed: Vec<EdgeId> = ev
        .disabled()
        .iter()
        .enumerate()
        .filter(|(_, &d)| d)
        .map(|(i, _)| EdgeId(i as u32))
        .collect();
    let fresh = IncrementalEvaluator::new_with_failures(
        &scratch_net,
        &weights,
        session.demands(),
        session.waypoints(),
        &failed,
    )
    .expect("committed session state is routable");
    (
        bits(fresh.loads()),
        fresh.phi().to_bits(),
        fresh.mlu().to_bits(),
    )
}

/// One full event walk; checks both oracles after every event and returns
/// the per-event bit trace for the thread × engine grid comparison.
fn walk(label: &str, net: &Network, demands: &DemandList, check_search: bool) -> Vec<Vec<u64>> {
    let deployed = round_deployed(net, &WeightSetting::unit(net), 20);
    let cfg = ServeConfig::default();
    let mut session = ServeSession::new(
        net,
        &deployed,
        demands.clone(),
        WaypointSetting::none(demands.len()),
        cfg,
    )
    .expect("session opens");
    let mut trace = Vec::new();
    for (k, event) in scripted_events(net, demands, 0xd1ff).iter().enumerate() {
        let pre_weights: Vec<f64> = session.evaluator().weights().to_vec();
        let r = session.apply(event);
        let ctx = format!("{label} event {k} ({event:?})");

        // Response invariants.
        assert_eq!(r.seq, k as u64 + 1, "{ctx}: seq");
        assert_eq!(r.churn, r.weight_diffs.len(), "{ctx}: churn accounting");
        assert_eq!(
            r.mlu.to_bits(),
            session.evaluator().mlu().to_bits(),
            "{ctx}: mlu"
        );
        for &(e, old, new) in &r.weight_diffs {
            assert_eq!(
                old.to_bits(),
                pre_weights[e.index()].to_bits(),
                "{ctx}: diff old"
            );
            assert_eq!(
                new.to_bits(),
                session.evaluator().weights()[e.index()].to_bits(),
                "{ctx}: diff new"
            );
        }
        if r.tier == ServeTier::Error {
            assert_eq!(
                bits(&pre_weights),
                bits(session.evaluator().weights()),
                "{ctx}: error reply must not change weights"
            );
        }

        // Oracle 1: state vs from-scratch reconstruction.
        let (loads, phi, mlu) = scratch_state(&session);
        assert_eq!(bits(session.evaluator().loads()), loads, "{ctx}: loads");
        assert_eq!(session.evaluator().phi().to_bits(), phi, "{ctx}: phi");
        assert_eq!(session.evaluator().mlu().to_bits(), mlu, "{ctx}: mlu");

        // Oracle 2: the local-search trajectory from the pre-event weights.
        if check_search && (r.tier == ServeTier::Local || r.tier == ServeTier::Escalate) {
            let ev = session.evaluator();
            let scratch_net = recapacitated(session.network(), ev.capacities());
            let pre =
                WeightSetting::new(&scratch_net, pre_weights.clone()).expect("pre-event weights");
            let failed: Vec<EdgeId> = ev
                .disabled()
                .iter()
                .enumerate()
                .filter(|(_, &d)| d)
                .map(|(i, _)| EdgeId(i as u32))
                .collect();
            let mut fresh = IncrementalEvaluator::new_with_failures(
                &scratch_net,
                &pre,
                session.demands(),
                session.waypoints(),
                &failed,
            )
            .expect("pre-event state routable");
            let mut reopt_cfg = session.config().reopt.clone();
            if r.tier == ServeTier::Escalate {
                reopt_cfg.max_weight_changes = net.edge_count();
            }
            let result = reoptimize_weights_on(&mut fresh, &reopt_cfg).expect("search runs");
            assert_eq!(
                bits(result.weights.as_slice()),
                bits(session.evaluator().weights()),
                "{ctx}: scratch search must reproduce the deployed weights"
            );
            assert_eq!(
                result.mlu.to_bits(),
                session.evaluator().mlu().to_bits(),
                "{ctx}: scratch search mlu"
            );
        }

        // Grid trace: everything observable about this event.
        let mut row = vec![
            r.seq,
            r.tier.as_str().len() as u64,
            r.churn as u64,
            r.evaluations,
        ];
        row.extend(bits(session.evaluator().weights()));
        row.extend(bits(session.evaluator().loads()));
        row.push(session.evaluator().phi().to_bits());
        row.push(session.evaluator().mlu().to_bits());
        trace.push(row);
    }
    trace
}

#[test]
fn post_event_state_matches_scratch_rebuild_on_all_cases() {
    let _guard = global_lock();
    let _restore = Restore;
    segrout::graph::set_heap_only(false);
    segrout::par::set_threads(0);
    for (label, net, demands) in cases() {
        walk(&label, &net, &demands, true);
    }
}

#[test]
fn event_walk_bit_identical_across_threads_and_engines() {
    let _guard = global_lock();
    let _restore = Restore;
    // The search oracle is covered by the test above; here the walk runs
    // once per grid point and every observable bit must agree.
    for (label, net, demands) in cases() {
        let mut traces = Vec::new();
        for threads in [1usize, 4] {
            for heap in [false, true] {
                segrout::par::set_threads(threads);
                segrout::graph::set_heap_only(heap);
                traces.push((threads, heap, walk(&label, &net, &demands, false)));
            }
        }
        segrout::graph::set_heap_only(false);
        segrout::par::set_threads(0);
        let (_, _, reference) = &traces[0];
        for (threads, heap, t) in &traces[1..] {
            assert_eq!(
                reference, t,
                "{label}: walk diverged at {threads} threads, heap_only={heap}"
            );
        }
    }
}
