//! End-to-end protocol tests: spawn the real `segrout serve` binary over
//! stdio JSONL and check the wire contract — well-formed responses,
//! monotone sequence numbers, error replies (not process death) for
//! malformed events, a shutdown ack, and byte-identical response streams
//! when the same event log is replayed.

use std::io::Write;
use std::process::{Command, Stdio};

/// Runs `segrout serve` with the given extra args, feeding `input` on
/// stdin; returns (stdout, stderr, success).
fn run_serve(input: &str, extra: &[&str]) -> (String, String, bool) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_segrout"));
    cmd.arg("serve")
        .args(["--topology", "Abilene", "--restarts", "0", "--passes", "2"])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("binary spawns");
    child
        .stdin
        .take()
        .expect("piped")
        .write_all(input.as_bytes())
        .expect("stdin accepts the event log");
    let out = child.wait_with_output().expect("binary exits");
    (
        String::from_utf8(out.stdout).expect("stdout is UTF-8"),
        String::from_utf8(out.stderr).expect("stderr is UTF-8"),
        out.status.success(),
    )
}

const EVENT_LOG: &str = r#"{"event":"noop"}
{"event":"demand","index":3,"factor":1.7}
{"event":"link_down","edge":4}
{"event":"capacity","edge":1,"capacity":4000}
not json at all
{"event":"demand","index":999999,"factor":2.0}
{"event":"mystery"}
{"event":"link_up","edge":4}
{"event":"matrix","demands":[[0,5,100.0],[5,0,50.0],[2,9,25.0]]}
{"event":"shutdown"}
"#;

#[test]
fn protocol_round_trip_is_well_formed() {
    let (stdout, stderr, ok) = run_serve(EVENT_LOG, &[]);
    assert!(ok, "serve must exit cleanly; stderr:\n{stderr}");

    let lines: Vec<&str> = stdout.lines().collect();
    // One response per input line: 9 events + the shutdown ack.
    assert_eq!(lines.len(), 10, "stdout:\n{stdout}");

    for (i, line) in lines.iter().take(9).enumerate() {
        let rec = segrout::obs::Json::parse(line)
            .unwrap_or_else(|e| panic!("line {i} is not JSON ({e}): {line}"));
        assert_eq!(rec["type"].as_str(), Some("serve"), "line {i}");
        assert_eq!(
            rec["seq"].as_i64(),
            Some(i as i64 + 1),
            "seq must be monotone through errors (line {i})"
        );
        let tier = rec["tier"].as_str().expect("tier present");
        assert!(
            ["none", "local", "escalate", "error"].contains(&tier),
            "line {i}: unknown tier {tier}"
        );
        let mlu = rec["mlu"].as_f64().expect("mlu present");
        assert!(mlu.is_finite() && mlu > 0.0, "line {i}: mlu {mlu}");
        assert!(rec["phi"].as_f64().is_some(), "line {i}: phi");
        let churn = rec["churn"].as_i64().expect("churn present");
        let diffs = rec["weight_diffs"].as_arr().expect("weight_diffs present");
        assert_eq!(churn as usize, diffs.len(), "line {i}: churn accounting");
        // Responses must not leak wall-clock times into the protocol.
        assert!(
            rec["latency_ms"].as_f64().is_none(),
            "line {i}: latency is bookkeeping, not protocol"
        );
    }

    // The three malformed lines (bad JSON, out-of-range index, unknown
    // event) get error replies in place.
    for (i, want) in [
        (4, "invalid JSON"),
        (5, "demand index"),
        (6, "unknown event type"),
    ] {
        let rec = segrout::obs::Json::parse(lines[i]).expect("parsed above");
        assert_eq!(rec["tier"].as_str(), Some("error"), "line {i}");
        let err = rec["error"].as_str().expect("error reason present");
        assert!(
            err.contains(want),
            "line {i}: reason {err:?} missing {want:?}"
        );
    }

    // Shutdown control line gets the ack, not a serve response.
    let bye = segrout::obs::Json::parse(lines[9]).expect("ack is JSON");
    assert_eq!(bye["type"].as_str(), Some("bye"));
    assert_eq!(bye["events"].as_i64(), Some(9));
}

#[test]
fn replaying_the_same_event_log_is_byte_identical() {
    let (first, _, ok1) = run_serve(EVENT_LOG, &[]);
    let (second, _, ok2) = run_serve(EVENT_LOG, &[]);
    assert!(ok1 && ok2);
    assert_eq!(first, second, "replay must be byte-identical");
    // And at 4 worker threads as well.
    let (threaded, _, ok3) = run_serve(EVENT_LOG, &["--threads", "4"]);
    assert!(ok3);
    assert_eq!(
        first, threaded,
        "replay must be byte-identical at any thread count"
    );
}

#[test]
fn event_file_replay_matches_stdin() {
    let dir = std::env::temp_dir().join(format!("segrout_serve_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("events.jsonl");
    std::fs::write(&path, EVENT_LOG).expect("event log written");
    let (stdin_out, _, ok1) = run_serve(EVENT_LOG, &[]);
    let (file_out, _, ok2) = run_serve("", &["--events", path.to_str().expect("utf-8 path")]);
    assert!(ok1 && ok2);
    assert_eq!(stdin_out, file_out, "--events must match the stdin stream");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eof_without_shutdown_exits_cleanly() {
    let (stdout, stderr, ok) = run_serve("{\"event\":\"noop\"}\n", &[]);
    assert!(ok, "EOF is a clean exit; stderr:\n{stderr}");
    assert_eq!(stdout.lines().count(), 1);
    assert!(
        stderr.contains("1 event(s)"),
        "summary goes to stderr:\n{stderr}"
    );
}
