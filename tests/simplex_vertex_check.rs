//! Independent validation of the simplex: on two-variable LPs the optimum
//! lies on a vertex of the feasible polygon, and all vertices can be
//! enumerated by intersecting constraint/bound lines pairwise. The simplex
//! must agree with that brute force on every random instance (deterministic
//! seeded sweeps from the vendored PRNG).

use segrout_core::rng::StdRng;
use segrout_lp::{solve_lp, Cmp, LpStatus, Problem, Sense};

/// All candidate vertices of `{a1 x + b1 y <= c1, ...} ∩ [0,U]^2`:
/// intersections of every pair of boundary lines.
fn enumerate_vertices(rows: &[(f64, f64, f64)], upper: f64) -> Vec<(f64, f64)> {
    // Boundary lines as (a, b, c): a x + b y = c.
    let mut lines: Vec<(f64, f64, f64)> = rows.to_vec();
    lines.push((1.0, 0.0, 0.0)); // x = 0
    lines.push((0.0, 1.0, 0.0)); // y = 0
    lines.push((1.0, 0.0, upper)); // x = U
    lines.push((0.0, 1.0, upper)); // y = U
    let mut pts = Vec::new();
    for i in 0..lines.len() {
        for j in i + 1..lines.len() {
            let (a1, b1, c1) = lines[i];
            let (a2, b2, c2) = lines[j];
            let det = a1 * b2 - a2 * b1;
            if det.abs() < 1e-9 {
                continue;
            }
            let x = (c1 * b2 - c2 * b1) / det;
            let y = (a1 * c2 - a2 * c1) / det;
            pts.push((x, y));
        }
    }
    pts
}

fn feasible(rows: &[(f64, f64, f64)], upper: f64, x: f64, y: f64) -> bool {
    if !(-1e-7..=upper + 1e-7).contains(&x) || !(-1e-7..=upper + 1e-7).contains(&y) {
        return false;
    }
    rows.iter().all(|&(a, b, c)| a * x + b * y <= c + 1e-7)
}

/// Uniform draw in `[lo, hi)`.
fn uniform(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.gen_f64()
}

/// Random bounded-maximization LPs in 2 variables: simplex == vertex
/// enumeration.
#[test]
fn simplex_matches_vertex_enumeration() {
    for seed in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let obj_x = uniform(&mut rng, 0.1, 10.0);
        let obj_y = uniform(&mut rng, 0.1, 10.0);
        let n_rows = rng.gen_range(1..6usize);
        let rows: Vec<(f64, f64, f64)> = (0..n_rows)
            .map(|_| {
                (
                    uniform(&mut rng, 0.1, 5.0),
                    uniform(&mut rng, 0.1, 5.0),
                    uniform(&mut rng, 1.0, 20.0),
                )
            })
            .collect();
        let upper = 50.0;

        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, upper, obj_x);
        let y = p.add_var("y", 0.0, upper, obj_y);
        for &(a, b, c) in &rows {
            p.add_constraint(vec![(x, a), (y, b)], Cmp::Le, c);
        }
        let r = solve_lp(&p);
        assert_eq!(
            r.status,
            LpStatus::Optimal,
            "seed {seed}: bounded non-empty LP"
        );

        let best = enumerate_vertices(&rows, upper)
            .into_iter()
            .filter(|&(vx, vy)| feasible(&rows, upper, vx, vy))
            .map(|(vx, vy)| obj_x * vx + obj_y * vy)
            .fold(0.0f64, f64::max);
        assert!(
            (r.objective - best).abs() < 1e-5 * (1.0 + best),
            "seed {seed}: simplex {} vs vertex enumeration {}",
            r.objective,
            best
        );
    }
}

/// Minimization with >= rows: compare against vertex enumeration of the
/// flipped system.
#[test]
fn minimization_matches_vertex_enumeration() {
    for seed in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_cafe);
        let obj_x = uniform(&mut rng, 0.1, 10.0);
        let obj_y = uniform(&mut rng, 0.1, 10.0);
        let n_rows = rng.gen_range(1..5usize);
        let raw_rows: Vec<(f64, f64, f64)> = (0..n_rows)
            .map(|_| {
                (
                    uniform(&mut rng, 0.1, 5.0),
                    uniform(&mut rng, 0.1, 5.0),
                    uniform(&mut rng, 1.0, 20.0),
                )
            })
            .collect();
        let upper = 50.0;
        // a x + b y >= c  <=>  -a x - b y <= -c.
        let rows: Vec<(f64, f64, f64)> = raw_rows.iter().map(|&(a, b, c)| (-a, -b, -c)).collect();

        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, upper, obj_x);
        let y = p.add_var("y", 0.0, upper, obj_y);
        for &(a, b, c) in &raw_rows {
            p.add_constraint(vec![(x, a), (y, b)], Cmp::Ge, c);
        }
        let r = solve_lp(&p);
        let best = enumerate_vertices(&rows, upper)
            .into_iter()
            .filter(|&(vx, vy)| feasible(&rows, upper, vx, vy))
            .map(|(vx, vy)| obj_x * vx + obj_y * vy)
            .fold(f64::INFINITY, f64::min);
        if best.is_finite() {
            assert_eq!(r.status, LpStatus::Optimal, "seed {seed}");
            assert!(
                (r.objective - best).abs() < 1e-5 * (1.0 + best.abs()),
                "seed {seed}: simplex {} vs vertex enumeration {}",
                r.objective,
                best
            );
        } else {
            // The >= rows can exceed what the box [0,U]^2 can deliver: both
            // the enumeration and the simplex must agree it is infeasible.
            assert_eq!(r.status, LpStatus::Infeasible, "seed {seed}");
        }
    }
}
