//! Cross-validation of the LP/MILP solver against independent oracles:
//! brute-force enumeration for small integer programs, and the
//! combinatorial max-flow solver for flow LPs. Random instances come from
//! the vendored seeded PRNG (deterministic sweeps).

use segrout_core::rng::StdRng;
use segrout_core::{DemandList, NodeId};
use segrout_graph::max_flow;
use segrout_lp::{solve_lp, solve_milp, Cmp, MilpOptions, Problem, Sense};
use segrout_milp::{max_concurrent_lp, opt_mlu_lp};
use segrout_topo::random_connected;

/// Brute force: maximize c·x over binary x subject to one knapsack row.
fn brute_force_knapsack(values: &[f64], weights: &[f64], cap: f64) -> f64 {
    let n = values.len();
    let mut best = 0.0f64;
    for mask in 0u32..(1 << n) {
        let mut v = 0.0;
        let mut w = 0.0;
        for i in 0..n {
            if mask & (1 << i) != 0 {
                v += values[i];
                w += weights[i];
            }
        }
        if w <= cap + 1e-9 {
            best = best.max(v);
        }
    }
    best
}

/// MILP knapsacks match brute force exactly.
#[test]
fn milp_matches_brute_force() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2..10usize);
        let values: Vec<f64> = (0..n).map(|_| f64::from(rng.gen_range(1..50u32))).collect();
        let weights: Vec<f64> = (0..n).map(|_| f64::from(rng.gen_range(1..30u32))).collect();
        let cap = f64::from(rng.gen_range(5..60u32));

        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| p.add_bin_var(format!("x{i}"), v))
            .collect();
        p.add_constraint(
            vars.iter().zip(&weights).map(|(&v, &w)| (v, w)).collect(),
            Cmp::Le,
            cap,
        );
        let r = solve_milp(&p, &MilpOptions::default());
        let expected = brute_force_knapsack(&values, &weights, cap);
        let got = r.objective.unwrap_or(0.0);
        assert!(
            (got - expected).abs() < 1e-6,
            "seed {seed}: {got} vs {expected}"
        );
    }
}

/// The LP relaxation never undercuts the integer optimum (maximize) and
/// the MILP solution is feasible.
#[test]
fn relaxation_bounds_integer_optimum() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd_1234);
        let n = rng.gen_range(2..8usize);
        let values: Vec<u32> = (0..n).map(|_| rng.gen_range(1..20u32)).collect();
        let cap = rng.gen_range(3..40u32);

        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| p.add_bin_var(format!("x{i}"), f64::from(v)))
            .collect();
        p.add_constraint(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, (i % 3 + 1) as f64))
                .collect(),
            Cmp::Le,
            f64::from(cap),
        );
        let relax = solve_lp(&p);
        let exact = solve_milp(&p, &MilpOptions::default());
        let int_obj = exact.objective.unwrap_or(0.0);
        assert!(relax.objective >= int_obj - 1e-6, "seed {seed}");
        if let Some(v) = &exact.values {
            assert!(p.is_feasible(v, 1e-6), "seed {seed}");
        }
    }
}

/// Single-commodity OPT MLU from the LP equals D / maxflow (non-property
/// deterministic sweep over random networks).
#[test]
fn opt_lp_matches_max_flow_single_commodity() {
    for seed in 0..8u64 {
        let net = random_connected(10, 16, 200 + seed);
        let (s, t) = (NodeId(0), NodeId(5));
        let mf = max_flow(net.graph(), net.capacities(), s, t);
        let d_total = 3.0;
        let mut demands = DemandList::new();
        demands.push(s, t, d_total);
        let lp = opt_mlu_lp(&net, &demands).expect("connected").objective;
        assert!(
            (lp - d_total / mf.value).abs() < 1e-5 * (1.0 + lp),
            "seed {seed}: LP {lp} vs D/maxflow {}",
            d_total / mf.value
        );
        // Max concurrent LP is the reciprocal relationship.
        let lambda = max_concurrent_lp(&net, &demands)
            .expect("connected")
            .objective;
        assert!(
            (lambda * lp - 1.0).abs() < 1e-5,
            "lambda {lambda} * mlu {lp} != 1"
        );
    }
}

/// Degenerate LPs (redundant equalities) do not cycle or crash.
#[test]
fn degenerate_lp_terminates() {
    let mut p = Problem::new(Sense::Minimize);
    let x = p.add_var("x", 0.0, 10.0, 1.0);
    let y = p.add_var("y", 0.0, 10.0, 1.0);
    for _ in 0..6 {
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        p.add_constraint(vec![(x, 2.0), (y, 2.0)], Cmp::Ge, 8.0);
    }
    let r = solve_lp(&p);
    assert_eq!(r.status, segrout_lp::LpStatus::Optimal);
    assert!((r.objective - 4.0).abs() < 1e-6);
}
