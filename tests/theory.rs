//! Cross-crate validation of the paper's theorems on constructed and random
//! instances.

use segrout_algos::{dag_realizing_weights, lwo_apx, max_concurrent_flow};
use segrout_core::{DemandList, Network, NodeId, Router, WaypointSetting};
use segrout_graph::disjoint::edge_disjoint_paths;
use segrout_graph::{acyclic_max_flow, decompose_into_paths};
use segrout_instances::{instance1, instance2, instance3, instance5};
use segrout_milp::opt_mlu_lp;
use segrout_topo::{grid, random_connected, ring};

/// Theorem 4.2: uniform capacities + single source-target pair implies
/// LWO = OPT. Constructive check: the Menger edge-disjoint path family,
/// realized as an ECMP DAG via Lemma 4.1, achieves MLU = D / (C |P|) = OPT.
#[test]
fn theorem_4_2_uniform_capacities() {
    for (net, s, t) in [
        (grid(4, 3, 5.0), NodeId(0), NodeId(11)),
        (ring(8, 2.0), NodeId(0), NodeId(4)),
        (grid(5, 2, 1.0), NodeId(0), NodeId(9)),
    ] {
        let paths = edge_disjoint_paths(net.graph(), s, t);
        assert!(!paths.is_empty());
        // Union of the basic paths as an edge mask.
        let mut mask = vec![false; net.edge_count()];
        for p in &paths {
            for &e in &p.edges {
                mask[e.index()] = true;
            }
        }
        let weights = dag_realizing_weights(&net, &mask).expect("acyclic");
        let c = net.capacities()[0];
        let d_total = 3.7; // arbitrary demand volume
        let mut demands = DemandList::new();
        demands.push(s, t, d_total);
        let mlu = Router::new(&net, &weights).mlu(&demands).expect("routes");
        let opt = d_total / (c * paths.len() as f64);
        assert!(
            (mlu - opt).abs() < 1e-9,
            "LWO must equal OPT under uniform capacities: {mlu} vs {opt}"
        );
    }
}

/// Theorem 4.3: the single-best-path weight setting shows
/// LWO <= |P| * OPT, where P is a flow decomposition of the max flow.
#[test]
fn theorem_4_3_path_decomposition_bound() {
    for seed in 0..5u64 {
        let net = random_connected(12, 20, seed);
        let (s, t) = (NodeId(0), NodeId(7));
        let flow = acyclic_max_flow(net.graph(), net.capacities(), s, t);
        if flow.value <= 1e-9 {
            continue;
        }
        let paths = decompose_into_paths(net.graph(), &flow);
        assert!(paths.len() <= net.edge_count());

        // Weight setting: 1 on the max-amount path, n elsewhere.
        let best = paths
            .iter()
            .max_by(|a, b| a.amount.partial_cmp(&b.amount).expect("finite"))
            .expect("non-empty");
        let mut w = vec![net.node_count() as f64; net.edge_count()];
        for &e in &best.edges {
            w[e.index()] = 1.0;
        }
        let weights = segrout_core::WeightSetting::new(&net, w).expect("positive");
        let d_total = flow.value; // route |f*| units
        let mut demands = DemandList::new();
        demands.push(s, t, d_total);
        let lwo_upper = Router::new(&net, &weights).mlu(&demands).expect("routes");
        let opt = d_total / flow.value; // = 1
        assert!(
            lwo_upper <= paths.len() as f64 * opt + 1e-6,
            "seed {seed}: LWO {lwo_upper} exceeds |P| * OPT = {}",
            paths.len()
        );
    }
}

/// Equation 2.1 (OPT <= Joint <= min{LWO, WPO}) verified on the paper
/// instances via the constructive joint settings and exact OPT.
#[test]
fn equation_2_1_ordering() {
    for inst in [instance1(5), instance2(6), instance3(3), instance5(2)] {
        let opt = opt_mlu_lp(&inst.network, &inst.demands)
            .expect("connected")
            .objective;
        let joint = Router::new(&inst.network, &inst.joint_weights)
            .evaluate(&inst.demands, &inst.joint_waypoints)
            .expect("routes")
            .mlu;
        assert!(opt <= joint + 1e-6, "OPT {opt} > Joint {joint}");
        // The constructive settings all witness Joint = 1 = OPT here.
        assert!((joint - 1.0).abs() < 1e-9);
        assert!((opt - 1.0).abs() < 1e-4);
    }
}

/// Theorem 5.4 on random instances: LWO-APX's even-split flow is within
/// n * ceil(ln Delta*) of the maximum flow.
#[test]
fn theorem_5_4_on_random_networks() {
    for seed in 0..10u64 {
        let net = random_connected(14, 25, 100 + seed);
        let (s, t) = (NodeId(1), NodeId(9));
        let r = lwo_apx(&net, s, t).expect("strongly connected");
        let n = net.node_count() as f64;
        let delta = net.graph().max_out_degree() as f64;
        let bound = n * delta.ln().ceil().max(1.0);
        assert!(
            r.achieved_ratio() <= bound + 1e-9,
            "seed {seed}: ratio {} exceeds guarantee {bound}",
            r.achieved_ratio()
        );
        // And the weight setting must actually deliver the claimed ES-flow.
        let mut demands = DemandList::new();
        demands.push(s, t, r.es_flow_value);
        let mlu = Router::new(&net, &r.weights).mlu(&demands).expect("routes");
        assert!(
            mlu <= 1.0 + 1e-6,
            "seed {seed}: claimed ES-flow overloads: {mlu}"
        );
    }
}

/// Corollary 4.4 shape: on single-pair instances the measured LWO/OPT ratio
/// of LWO-APX stays within O(n log n); on the adversarial Instance 2 it is
/// exactly the harmonic number.
#[test]
fn corollary_4_4_gap_upper_bound() {
    for m in [4usize, 16, 64] {
        let inst = instance2(m);
        let r = lwo_apx(&inst.network, inst.source, inst.target).expect("routes");
        let h: f64 = (1..=m).map(|j| 1.0 / j as f64).sum();
        assert!((r.achieved_ratio() - h).abs() < 1e-9);
        let n = inst.network.node_count() as f64;
        assert!(r.achieved_ratio() <= n * n.ln());
    }
}

/// OPT cross-check: exact LP vs Garg-Könemann FPTAS on the paper instances
/// (the FPTAS upper-bounds OPT and must be close).
#[test]
fn opt_lp_vs_fptas() {
    for inst in [instance1(4), instance2(5)] {
        let exact = opt_mlu_lp(&inst.network, &inst.demands)
            .expect("connected")
            .objective;
        let approx = max_concurrent_flow(&inst.network, &inst.demands, 0.03)
            .expect("connected")
            .opt_mlu;
        assert!(approx >= exact - 1e-9);
        assert!(
            approx <= exact * 1.1 + 1e-9,
            "approx {approx} vs exact {exact}"
        );
    }
}

/// The uniform-capacity transformation of Theorem 3.8 preserves the gap:
/// filler demands occupy exactly the added headroom, so the LWO-optimal
/// weight setting still yields MLU >= m/2 + filler utilization behaviour.
#[test]
fn theorem_3_8_uniform_variant() {
    let m = 6;
    let (net, demands, s, t) = segrout_instances::instance1_uniform(m);
    assert!(net.has_uniform_capacities());
    // Under unit weights every filler demand (u, v, ...) rides its own link
    // (the direct link is the unique shortest path).
    let w = segrout_core::WeightSetting::unit(&net);
    let router = Router::new(&net, &w);
    let report = router
        .evaluate(&demands, &WaypointSetting::none(demands.len()))
        .expect("routes");
    // All m original demands pile onto the (now capacity-m) direct (s,t)
    // link together with its filler demand of size m-1: load 2m-1 on
    // capacity m keeps MLU around 2 under unit weights, and the thin-link
    // structure is preserved in the residual capacities.
    assert!(report.mlu > 1.0);
    let _ = (s, t);
}

/// Sanity: on a network where the max-flow DAG is already even-split
/// friendly, LWO-APX is exact and Joint cannot improve on LWO.
#[test]
fn joint_equals_lwo_when_split_is_free() {
    let k = 5u32;
    let mut b = Network::builder(2 + k as usize);
    for i in 0..k {
        let mid = NodeId(2 + i);
        b.link(NodeId(0), mid, 2.0);
        b.link(mid, NodeId(1), 2.0);
    }
    let net = b.build().expect("valid");
    let r = lwo_apx(&net, NodeId(0), NodeId(1)).expect("routes");
    assert!((r.achieved_ratio() - 1.0).abs() < 1e-9);
}
