//! Sanity battery over every embedded topology: the structural properties
//! the evaluation relies on must hold for each of them.

use segrout_core::{DemandList, NodeId, Router, WeightSetting};
use segrout_graph::metrics::metrics;
use segrout_topo::{by_name, topology_stats, TOPOLOGY_NAMES};

/// Every embedded topology is strongly connected, 2-edge-connected in the
/// evaluation sense (no bridge binds a ring node), and bi-directed.
#[test]
fn embedded_topologies_are_evaluation_ready() {
    for name in TOPOLOGY_NAMES {
        let net = by_name(name).expect("embedded");
        let stats = topology_stats(&net);
        assert_eq!(
            stats.graph.scc_count, 1,
            "{name} must be strongly connected"
        );
        assert!(stats.graph.diameter.is_some(), "{name} diameter defined");
        // Bi-directed convention: every link has its reverse.
        let g = net.graph();
        for (_, u, v) in g.edges() {
            assert!(
                g.find_edge(v, u).is_some(),
                "{name}: link {u:?}->{v:?} lacks its reverse"
            );
        }
        // Stand-ins (not Abilene) have no pendant nodes thanks to the ring
        // skeleton.
        if name != "Abilene" {
            assert!(
                stats.graph.min_out_degree >= 2,
                "{name}: ring skeleton guarantees degree >= 2"
            );
        }
    }
}

/// Every topology routes an all-pairs probe under unit weights — the
/// baseline the demand generators assume.
#[test]
fn all_pairs_routable_under_unit_weights() {
    for name in ["Abilene", "Geant", "Myren", "Zib54"] {
        let net = by_name(name).expect("embedded");
        let w = WeightSetting::unit(&net);
        let router = Router::new(&net, &w);
        let n = net.node_count() as u32;
        let mut demands = DemandList::new();
        for v in 1..n {
            demands.push(NodeId(0), NodeId(v), 1.0);
            demands.push(NodeId(v), NodeId(0), 1.0);
        }
        let mlu = router
            .mlu(&demands)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(mlu.is_finite() && mlu > 0.0);
    }
}

/// Published node/link counts (paper's data sources) hold for every
/// stand-in.
#[test]
fn published_sizes_hold() {
    let expected = [
        ("Abilene", 12, 30),
        ("Geant", 22, 72),
        ("Germany50", 50, 176),
        ("Cost266", 37, 114),
        ("Giul39", 39, 172),
        ("Janos-US-CA", 39, 122),
        ("Myren", 37, 78),
        ("Pioro40", 40, 178),
        ("Renater2010", 43, 112),
        ("SwitchL3", 42, 126),
        ("Ta2", 65, 216),
        ("Zib54", 54, 162),
    ];
    for (name, nodes, edges) in expected {
        let net = by_name(name).expect("embedded");
        assert_eq!(net.node_count(), nodes, "{name} node count");
        assert_eq!(net.edge_count(), edges, "{name} directed link count");
    }
}

/// Graph metrics agree between the topo-level stats and the graph-level
/// computation.
#[test]
fn stats_agree_with_graph_metrics() {
    let net = by_name("Cost266").expect("embedded");
    let a = topology_stats(&net).graph;
    let b = metrics(net.graph());
    assert_eq!(a, b);
}
